// Package design is the shared address-map and structure model of the
// hardware testing block: one snapshot per design point holding the
// register-file layout (name, test, address, width, word count) and the
// structural primitive inventory (kind, name, width, lanes, declared
// resources), extracted from a live hwblock.Block.
//
// Two consumers read the same model, which is the point: cmd/regmapdoc
// renders REGISTERS.md from it and internal/analysis/designlint proves the
// paper's width, collision and sharing constraints over it. Because both
// walk one extraction, the generated documentation and the static checks
// cannot drift apart — a register that designlint verifies is exactly the
// register the documentation describes.
package design

import (
	"fmt"

	"repro/internal/hwblock"
	"repro/internal/hwsim"
	"repro/internal/nist"
)

// AddressBits and WordBits re-export the bus contract so model consumers
// need no hwblock import of their own.
const (
	AddressBits = hwblock.AddressBits
	WordBits    = hwblock.WordBits
)

// Prim is the structural identity of one primitive plus its declared
// resource footprint.
type Prim struct {
	// Kind is the primitive family ("counter", "updown", "register",
	// "minmax", "max", "shiftreg", "cmp", "bank").
	Kind string
	// Name is the instance name.
	Name string
	// Width is the per-lane width in bits.
	Width int
	// Lanes is the element count (bank size; 1 otherwise).
	Lanes int
	// FFs and LUTs are the resources the primitive declares through
	// hwsim.Primitive.Resources.
	FFs, LUTs int
}

// Reg is one register-file entry of the memory map.
type Reg struct {
	// Name is the register's symbolic name.
	Name string
	// TestID is the SP800-22 test the value belongs to (0 for
	// infrastructure).
	TestID int
	// Addr is the first word address.
	Addr int
	// Width is the value width in bits.
	Width int
	// Words is the number of consecutive 16-bit words occupied.
	Words int
}

// Design is the model of one design point.
type Design struct {
	// Name labels the design point (e.g. "n65536-medium").
	Name string
	// N is the sequence length in bits.
	N int
	// Tests lists the implemented SP800-22 test numbers.
	Tests []int
	// Params carries the per-test parameters the block was built with.
	Params nist.Params
	// MuxWords is the output-multiplexer width the netlist declares.
	MuxWords int
	// Words is the total number of addressable words of the register
	// file.
	Words int
	// Prims is the structural inventory in construction order.
	Prims []Prim
	// Regs is the memory map in address order.
	Regs []Reg

	// Netlist is the live structural inventory the model was extracted
	// from; designlint's reset rule exercises the primitives' parallel
	// load ports through it. Nil in hand-built or cloned models.
	Netlist *hwsim.Netlist
}

// Has reports whether the design implements test id.
func (d *Design) Has(id int) bool {
	for _, t := range d.Tests {
		if t == id {
			return true
		}
	}
	return false
}

// FreeWords reports the unassigned remainder of the 7-bit address space.
func (d *Design) FreeWords() int { return 1<<AddressBits - d.Words }

// Clone returns a deep copy of the model with the live netlist detached —
// the mutation-kill suite edits clones into deliberately broken variants
// without disturbing the original.
func (d *Design) Clone() *Design {
	c := *d
	c.Tests = append([]int(nil), d.Tests...)
	c.Prims = append([]Prim(nil), d.Prims...)
	c.Regs = append([]Reg(nil), d.Regs...)
	c.Netlist = nil
	return &c
}

// FromBlock extracts the model from a live block. It re-validates the
// 7-bit address space so a consumer that only renders documentation
// (cmd/regmapdoc) refuses an overflowing map even when designlint never
// runs.
func FromBlock(b *hwblock.Block) (*Design, error) {
	cfg := b.Config()
	if err := b.RegFile().CheckAddressSpace(); err != nil {
		return nil, fmt.Errorf("design: %s: %w", cfg.Name, err)
	}
	d := &Design{
		Name:     cfg.Name,
		N:        cfg.N,
		Tests:    append([]int(nil), cfg.Tests...),
		Params:   cfg.Params,
		MuxWords: b.Netlist().MuxWords(),
		Words:    b.RegFile().Words(),
		Netlist:  b.Netlist(),
	}
	for _, p := range b.Netlist().Primitives() {
		desc, ok := p.(hwsim.Described)
		if !ok {
			return nil, fmt.Errorf("design: %s: primitive %s exposes no structural identity",
				cfg.Name, p.PrimName())
		}
		info := desc.Info()
		res := p.Resources()
		d.Prims = append(d.Prims, Prim{
			Kind: info.Kind, Name: info.Name, Width: info.Width, Lanes: info.Lanes,
			FFs: res.FFs, LUTs: res.LUTs,
		})
	}
	for _, e := range b.RegFile().Entries() {
		d.Regs = append(d.Regs, Reg{
			Name: e.Name, TestID: e.TestID, Addr: e.Addr, Width: e.Width, Words: e.Words,
		})
	}
	return d, nil
}

// New builds the block for cfg and extracts its model.
func New(cfg hwblock.Config) (*Design, error) {
	b, err := hwblock.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("design: building %s: %w", cfg.Name, err)
	}
	return FromBlock(b)
}

// All extracts the models of the paper's eight shipped design points, in
// Table III column order.
func All() ([]*Design, error) {
	configs := hwblock.AllConfigs()
	out := make([]*Design, 0, len(configs))
	for _, cfg := range configs {
		d, err := New(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
