package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hwblock"
	"repro/internal/obs"
)

func design128Medium(t testing.TB) hwblock.Config {
	t.Helper()
	cfg, err := hwblock.NewConfig(128, hwblock.Medium)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// slicedChaosOps extends the chaos defect zoo for the bit-sliced suite:
// the base op lists are too short to cross the lane-group pressure gate
// (they detach before buffering pressureBits), so one stream class gets
// a long healthy run that deterministically forces tile absorption, the
// next uses ragged 40-bit batches so 64-bit tile chunks straddle batch
// boundaries — covering the mid-batch cursor bookkeeping in gather64 and
// the partial-head drain on eviction — and a third pushes through the
// batched producer API in run lengths chosen to straddle the staging
// flush, covering PushWords' multi-slot publish and stage-full handoff.
func slicedChaosOps(idx int) []Op {
	ops := chaosOps(idx)
	rng := rand.New(rand.NewSource(int64(5_000_000 + idx)))
	switch idx % 4 {
	case 0:
		for i := 0; i < pressureBits/64+32; i++ { // crosses the pressure gate
			ops = append(ops, Op{Kind: OpWord, W: rng.Uint64(), N: 64})
		}
	case 1:
		for i := 0; i < fifoBatches+32; i++ { // overflows the fifo
			ops = append(ops, Op{Kind: OpWord, W: rng.Uint64() & (1<<40 - 1), N: 40})
		}
	case 2:
		// Runs longer than a stage, a misaligning remainder run, then a
		// short run that lands mid-stage — together they hit every
		// PushWords fill shape (stage-spanning, stage-filling, partial).
		for _, n := range []int{stageBatches + 17, stageBatches - 17, 7} {
			run := make([]uint64, n)
			for i := range run {
				run[i] = rng.Uint64()
			}
			ops = append(ops, Op{Kind: OpRun, Ws: run})
		}
	}
	return ops
}

// TestChaosBitSlicedMatchesSerial extends the chaos suite to bit-sliced
// ingest: 200 concurrent defect-zoo streams over two churn generations
// (register, push, detach, re-register) on a BitSliced pool must stay
// byte-identical to their serial replays — through lane adoption, group
// rollover, mid-sequence eviction on detach and hard faults, breaker
// trips at sequence boundaries and sub-word batches straddling tiles. The
// n=128 medium design keeps the residual serial-test engines live, so the
// lazy-de-transposition contract (templates and serial fed from the
// original words) is covered, not just the sliceable four.
func TestChaosBitSlicedMatchesSerial(t *testing.T) {
	const streams = 200
	const generations = 2
	reg := obs.NewRegistry()
	cfg := Config{
		Design:     design128Medium(t),
		Alpha:      0.01,
		Shards:     4,
		QueueDepth: 64,
		Policy:     Block, // lossless: every stream must match its serial run
		BitSliced:  true,
		Obs:        reg,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reports := make([]StreamReport, streams*generations)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for gen := 0; gen < generations; gen++ {
				s, err := p.Register(fmt.Sprintf("sliced-%d-%03d", gen, idx))
				if err != nil {
					t.Errorf("register %d gen %d: %v", idx, gen, err)
					return
				}
				for _, op := range slicedChaosOps(gen*streams + idx) {
					if err := op.Apply(s); err != nil {
						t.Errorf("stream %d gen %d: %v", idx, gen, err)
						return
					}
				}
				reports[gen*streams+idx] = s.Detach()
			}
		}(i)
	}
	wg.Wait()
	p.Shutdown()

	serialCfg := Config{Design: design128Medium(t), Alpha: 0.01, Shards: 1, QueueDepth: 64}
	var sumOffered, sumAccepted, sumDiscarded int64
	sawBreaker, sawWatchdog := false, false
	for i := range reports {
		r := reports[i]
		if r.Shed() {
			t.Fatalf("stream %d shed batches under the Block policy", i)
		}
		want, err := ReplaySerial(serialCfg, r.Tenant, slicedChaosOps(i))
		if err != nil {
			t.Fatal(err)
		}
		assertReportsIdentical(t, r, want)
		sumOffered += r.OfferedBatches
		sumAccepted += r.AcceptedBatches
		sumDiscarded += r.DiscardedBatches
		sawBreaker = sawBreaker || r.BreakerTripped
		sawWatchdog = sawWatchdog || r.Watchdogs > 0
	}
	if !sawBreaker || !sawWatchdog {
		t.Fatalf("chaos zoo incomplete under slicing: breaker=%v watchdog=%v", sawBreaker, sawWatchdog)
	}
	if sumOffered != sumAccepted+sumDiscarded {
		t.Fatalf("batch accounting leak: offered %d != accepted %d + discarded %d",
			sumOffered, sumAccepted, sumDiscarded)
	}
	// The run must actually have exercised the sliced machinery, not have
	// quietly fallen back to serial ingest.
	if v := reg.Counter("fleet_sliced_adoptions_total", "").Value(); v == 0 {
		t.Fatal("no stream was ever adopted into a lane group")
	}
	if v := reg.Counter("fleet_sliced_tiles_total", "").Value(); v == 0 {
		t.Fatal("no transposed tile was ever absorbed")
	}
	for _, reason := range []string{"detach", "fault"} {
		if v := reg.Counter("fleet_sliced_evictions_total", "", "reason", reason).Value(); v == 0 {
			t.Fatalf("chaos churn never exercised %s evictions", reason)
		}
	}
	if v := reg.Gauge("fleet_sliced_lanes", "").Value(); v != 0 {
		t.Fatalf("fleet_sliced_lanes = %v after shutdown, want 0", v)
	}
}

// TestBitSlicedShedAccounting pins the staged-flush form of the shedding
// contract: under ShedNewest a congested flush drops the whole stage, and
// every batch still lands in exactly one outcome bucket.
func TestBitSlicedShedAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		Design:     design128(t),
		Alpha:      0.01,
		Shards:     1,
		QueueDepth: 1,
		Policy:     ShedNewest,
		BitSliced:  true,
		Obs:        reg,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 16
	const pushes = 20 * stageBatches
	reports := make([]StreamReport, producers)
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			s, err := p.Register(fmt.Sprintf("shed-%02d", idx))
			if err != nil {
				t.Errorf("register %d: %v", idx, err)
				return
			}
			rng := rand.New(rand.NewSource(int64(idx)))
			for j := 0; j < pushes; j++ {
				if err := s.Push(rng.Uint64(), 64); err != nil && !errors.Is(err, ErrShed) {
					t.Errorf("stream %d: %v", idx, err)
					return
				}
			}
			reports[idx] = s.Detach()
		}(i)
	}
	wg.Wait()
	p.Shutdown()
	var totalShed uint64
	for i, r := range reports {
		if r.OfferedBatches != pushes {
			t.Fatalf("stream %d offered %d, want %d", i, r.OfferedBatches, pushes)
		}
		if r.AcceptedBatches+r.ShedBatches+r.DiscardedBatches != r.OfferedBatches {
			t.Fatalf("stream %d: offered %d != accepted %d + shed %d + discarded %d",
				i, r.OfferedBatches, r.AcceptedBatches, r.ShedBatches, r.DiscardedBatches)
		}
		if r.ShedBatches%stageBatches != 0 {
			t.Fatalf("stream %d shed %d batches, not a whole number of stages", i, r.ShedBatches)
		}
		totalShed += uint64(r.ShedBatches)
	}
	if v := reg.Counter("fleet_batches_total", "", "outcome", "shed").Value(); v != totalShed {
		t.Fatalf("aggregate shed counter = %d, want %d", v, totalShed)
	}
}

// TestBitSlicedValidation pins the admission-time design check: a design
// the slicing engine cannot express (here a sequence length that is not a
// whole number of 64-bit tiles) is rejected at New, not at first adoption.
func TestBitSlicedValidation(t *testing.T) {
	design := design128(t)
	design.N = 96
	if _, err := New(Config{Design: design, Alpha: 0.01, BitSliced: true}); err == nil {
		t.Fatal("BitSliced accepted a design hwslice cannot express")
	}
}

// TestBitSlicedPushZeroAllocMidSequence is the sliced twin of
// TestPushZeroAllocMidSequence: steady-state staged Push — staging,
// credit handshake, shard-side copy, lane fifo, tile transpose, engine
// absorb and external-mode monitor feed — performs zero heap allocations
// between sequence boundaries.
func TestBitSlicedPushZeroAllocMidSequence(t *testing.T) {
	cfg := Config{
		Design:     design65536(t),
		Alpha:      0.01,
		Shards:     1,
		QueueDepth: 4096,
		BitSliced:  true,
		Obs:        obs.NewRegistry(),
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const nStreams = 64
	streams := make([]*Stream, nStreams)
	for i := range streams {
		s, err := p.Register(fmt.Sprintf("steady-%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
	}
	var words [256]uint64
	rng := rand.New(rand.NewSource(1))
	for i := range words {
		words[i] = rng.Uint64()
	}
	// Warm up: fill the lane group (adoption allocates the group and
	// engine once) and let every stream flush a few stages.
	for j := 0; j < 4*stageBatches; j++ {
		for _, s := range streams {
			if err := s.Push(words[j&255], 64); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The window stays far below one n=65536 sequence per stream, so no
	// boundary hand-back lands inside the measurement.
	i := 0
	allocs := testing.AllocsPerRun(800, func() {
		if err := streams[i%nStreams].Push(words[i&255], 64); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state sliced Push allocates %.1f times per op, want 0", allocs)
	}
	p.Shutdown()
}

// TestPushWordsDetachRace drives the batched producer API into concurrent
// Detach calls: the multi-slot publish and the detach flush race, and the
// resolution contract is that every word of a nil-returning PushWords was
// drained and accounted, while an ErrDetached call delivers at most a
// prefix — so a report can never show fewer offered batches than its
// producer believes were delivered, and the accounting identity holds
// through every interleaving.
func TestPushWordsDetachRace(t *testing.T) {
	cfg := Config{
		Design:     design128(t),
		Alpha:      0.01,
		Shards:     2,
		QueueDepth: 4,
		Policy:     Block,
		BitSliced:  true,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 200
	if testing.Short() {
		rounds = 40
	}
	for i := 0; i < rounds; i++ {
		s, err := p.Register(fmt.Sprintf("race-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		var believed atomic.Int64
		done := make(chan struct{})
		go func(seed int64) {
			defer close(done)
			rng := rand.New(rand.NewSource(seed))
			run := make([]uint64, 3*stageBatches)
			for {
				n := 1 + rng.Intn(len(run))
				for j := 0; j < n; j++ {
					run[j] = rng.Uint64()
				}
				if s.PushWords(run[:n]) != nil {
					return
				}
				believed.Add(int64(n))
			}
		}(int64(9_000_000 + i))
		if i%8 != 0 {
			time.Sleep(time.Duration(i%5) * 10 * time.Microsecond)
		}
		rep := s.Detach()
		<-done
		if rep.OfferedBatches < believed.Load() {
			t.Fatalf("round %d: offered %d < %d words the producer believes delivered",
				i, rep.OfferedBatches, believed.Load())
		}
		if rep.OfferedBatches != rep.AcceptedBatches+rep.DiscardedBatches {
			t.Fatalf("round %d: offered %d != accepted %d + discarded %d",
				i, rep.OfferedBatches, rep.AcceptedBatches, rep.DiscardedBatches)
		}
	}
	p.Shutdown()
}
