package fleet

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/obs"
)

// fleetObs caches every aggregate observability handle once at pool
// construction. All handles are nil-safe no-ops when no registry is
// attached (internal/obs contract), so the hot paths carry at most one
// atomic update per event and never a registry lookup.
type fleetObs struct {
	reg *obs.Registry

	// Admission and lifecycle.
	admitted       *obs.Counter
	rejectedFull   *obs.Counter
	rejectedDup    *obs.Counter
	rejectedClosed *obs.Counter
	detached       *obs.Counter
	active         *obs.Gauge

	// Batch outcomes — every offered batch lands in exactly one bucket
	// (accepted, shed, sampled-out, discarded), so degradation is
	// accounted, never silent.
	batchesAccepted   *obs.Counter
	batchesShed       *obs.Counter
	batchesSampledOut *obs.Counter
	batchesDiscarded  *obs.Counter
	lateDropped       *obs.Counter

	// Faults, isolation and verdicts.
	faultsTransient *obs.Counter
	faultsHard      *obs.Counter
	faultsWatchdog  *obs.Counter
	quarantines     *obs.Counter
	breakerTrips    *obs.Counter
	alarmLatches    *obs.Counter
	onlineAlarms    *obs.Counter
	seqPass         *obs.Counter
	seqFail         *obs.Counter

	// Incident timeline, by Supervisor event kind.
	evQuarantine *obs.Counter
	evWatchdog   *obs.Counter
	evFailover   *obs.Counter
	evAlarm      *obs.Counter

	// Final stream conditions, by Supervisor verdict vocabulary.
	condOK          *obs.Counter
	condDegraded    *obs.Counter
	condFailedOver  *obs.Counter
	condStatFail    *obs.Counter
	condSourceFault *obs.Counter

	// Bit-sliced ingest (Config.BitSliced).
	slicedTiles         *obs.Counter
	slicedAdoptions     *obs.Counter
	slicedEvictHealth   *obs.Counter
	slicedEvictDetach   *obs.Counter
	slicedEvictFault    *obs.Counter
	slicedEvictOverflow *obs.Counter
	slicedLanes         *obs.Gauge

	// Per-shard ingest-queue gauges.
	queueDepth     []*obs.Gauge
	queueHighWater []*obs.Gauge
}

func (f *fleetObs) init(r *obs.Registry, shards int) {
	f.reg = r
	f.admitted = r.Counter("fleet_streams_admitted_total",
		"streams admitted by Register")
	const rejHelp = "admissions rejected, by reason"
	f.rejectedFull = r.Counter("fleet_streams_rejected_total", rejHelp, "reason", "full")
	f.rejectedDup = r.Counter("fleet_streams_rejected_total", rejHelp, "reason", "duplicate")
	f.rejectedClosed = r.Counter("fleet_streams_rejected_total", rejHelp, "reason", "shutting-down")
	f.detached = r.Counter("fleet_streams_detached_total",
		"streams detached (or drained at shutdown), reports flushed")
	f.active = r.Gauge("fleet_streams_active",
		"streams currently registered")

	const batchHelp = "ingest batches by outcome: accepted (processed), shed (dropped, queue full), sampled-out (dropped, stream degraded to sampled ingest), discarded (delivered after the breaker or alarm took the stream out of service)"
	f.batchesAccepted = r.Counter("fleet_batches_total", batchHelp, "outcome", "accepted")
	f.batchesShed = r.Counter("fleet_batches_total", batchHelp, "outcome", "shed")
	f.batchesSampledOut = r.Counter("fleet_batches_total", batchHelp, "outcome", "sampled-out")
	f.batchesDiscarded = r.Counter("fleet_batches_total", batchHelp, "outcome", "discarded")
	f.lateDropped = r.Counter("fleet_late_items_dropped_total",
		"queue items addressed to an already-finalized stream, dropped by the shard (stall-sweeper fault that lost its race with Detach)")

	const faultHelp = "source fault events delivered to streams, by kind"
	f.faultsTransient = r.Counter("fleet_faults_total", faultHelp, "kind", "transient")
	f.faultsHard = r.Counter("fleet_faults_total", faultHelp, "kind", "hard")
	f.faultsWatchdog = r.Counter("fleet_faults_total", faultHelp, "kind", "watchdog")
	f.quarantines = r.Counter("fleet_quarantines_total",
		"in-flight sequences discarded without evaluation")
	f.breakerTrips = r.Counter("fleet_breaker_trips_total",
		"per-stream circuit breakers opened (stream out of service)")
	f.alarmLatches = r.Counter("fleet_alarm_latches_total",
		"per-stream statistical alarms latched")
	f.onlineAlarms = r.Counter("fleet_online_alarms_total",
		"per-stream online anomaly trackers confirmed over threshold (quarantines the stream only under OnlineQuarantine)")
	const seqHelp = "evaluated sequences across the fleet, by verdict"
	f.seqPass = r.Counter("fleet_sequences_total", seqHelp, "result", "pass")
	f.seqFail = r.Counter("fleet_sequences_total", seqHelp, "result", "fail")

	const evHelp = "stream incidents by kind (Supervisor event vocabulary)"
	f.evQuarantine = r.Counter("fleet_events_total", evHelp, "kind", core.EventQuarantine.String())
	f.evWatchdog = r.Counter("fleet_events_total", evHelp, "kind", core.EventWatchdog.String())
	f.evFailover = r.Counter("fleet_events_total", evHelp, "kind", core.EventFailover.String())
	f.evAlarm = r.Counter("fleet_events_total", evHelp, "kind", core.EventAlarmLatched.String())

	const condHelp = "final stream conditions at detach (Supervisor verdict vocabulary)"
	f.condOK = r.Counter("fleet_stream_conditions_total", condHelp, "condition", core.OK.String())
	f.condDegraded = r.Counter("fleet_stream_conditions_total", condHelp, "condition", core.Degraded.String())
	f.condFailedOver = r.Counter("fleet_stream_conditions_total", condHelp, "condition", core.FailedOver.String())
	f.condStatFail = r.Counter("fleet_stream_conditions_total", condHelp, "condition", core.StatFail.String())
	f.condSourceFault = r.Counter("fleet_stream_conditions_total", condHelp, "condition", core.SourceFault.String())

	f.slicedTiles = r.Counter("fleet_sliced_tiles_total",
		"64-bit transposed tiles absorbed by bit-sliced lane groups")
	f.slicedAdoptions = r.Counter("fleet_sliced_adoptions_total",
		"streams adopted into a bit-sliced lane group")
	const evictHelp = "streams returned from bit-sliced to serial ingest, by reason: health (breaker or alarm at a sequence boundary), detach, fault (hard source fault mid-sequence), overflow (starved lane group drained past its fifo bound)"
	f.slicedEvictHealth = r.Counter("fleet_sliced_evictions_total", evictHelp, "reason", "health")
	f.slicedEvictDetach = r.Counter("fleet_sliced_evictions_total", evictHelp, "reason", "detach")
	f.slicedEvictFault = r.Counter("fleet_sliced_evictions_total", evictHelp, "reason", "fault")
	f.slicedEvictOverflow = r.Counter("fleet_sliced_evictions_total", evictHelp, "reason", "overflow")
	f.slicedLanes = r.Gauge("fleet_sliced_lanes",
		"streams currently resident in bit-sliced lane groups")

	f.queueDepth = make([]*obs.Gauge, shards)
	f.queueHighWater = make([]*obs.Gauge, shards)
	for i := 0; i < shards; i++ {
		id := strconv.Itoa(i)
		f.queueDepth[i] = r.Gauge("fleet_shard_queue_depth",
			"ingest batches queued per shard, sampled after each batch", "shard", id)
		f.queueHighWater[i] = r.Gauge("fleet_shard_queue_high_water",
			"deepest ingest queue observed per shard", "shard", id)
	}
}

// eventCounter maps an event kind to its cached counter (no map, no
// allocation — the event path runs on the shard goroutines).
func (f *fleetObs) eventCounter(kind core.EventKind) *obs.Counter {
	switch kind {
	case core.EventQuarantine:
		return f.evQuarantine
	case core.EventWatchdog:
		return f.evWatchdog
	case core.EventFailover:
		return f.evFailover
	case core.EventAlarmLatched:
		return f.evAlarm
	}
	return nil
}

// conditionCounter maps a final condition to its cached counter.
func (f *fleetObs) conditionCounter(c core.Condition) *obs.Counter {
	switch c {
	case core.OK:
		return f.condOK
	case core.Degraded:
		return f.condDegraded
	case core.FailedOver:
		return f.condFailedOver
	case core.StatFail:
		return f.condStatFail
	case core.SourceFault:
		return f.condSourceFault
	}
	return nil
}

// tenantObs is the opt-in per-tenant handle set (Config.PerTenantObs).
type tenantObs struct {
	pass, fail, quarantines, dropped *obs.Counter
	condition, anomaly               *obs.Gauge
}

func newTenantObs(r *obs.Registry, tenant string) tenantObs {
	return tenantObs{
		pass: r.Counter("fleet_tenant_sequences_total",
			"evaluated sequences per tenant, by verdict", "tenant", tenant, "result", "pass"),
		fail: r.Counter("fleet_tenant_sequences_total",
			"evaluated sequences per tenant, by verdict", "tenant", tenant, "result", "fail"),
		quarantines: r.Counter("fleet_tenant_quarantines_total",
			"sequences quarantined per tenant", "tenant", tenant),
		dropped: r.Counter("fleet_tenant_dropped_batches_total",
			"batches lost to load shedding per tenant (shed + sampled-out)", "tenant", tenant),
		condition: r.Gauge("fleet_tenant_condition",
			"stream condition per tenant: 0 ok, 1 degraded, 2 failed-over, 3 stat-fail, 4 source-fault", "tenant", tenant),
		anomaly: r.Gauge("fleet_tenant_anomaly_score",
			"online anomaly score per tenant (exponentially decayed worst z-score; updated at sequence boundaries, 0 until the window is primed)", "tenant", tenant),
	}
}
