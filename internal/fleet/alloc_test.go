package fleet

import (
	"math/rand"
	"testing"

	"repro/internal/hwblock"
	"repro/internal/obs"
)

func design65536(t testing.TB) hwblock.Config {
	t.Helper()
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestPushZeroAllocMidSequence is the strict form of the zero-alloc claim:
// between sequence boundaries, a fully instrumented Push — producer-side
// accounting, bounded-queue handoff, shard-side FeedWord into the hwfast
// ingest path — performs zero heap allocations.
func TestPushZeroAllocMidSequence(t *testing.T) {
	cfg := Config{
		Design:     design65536(t),
		Alpha:      0.01,
		Shards:     1,
		QueueDepth: 4096,
		Obs:        obs.NewRegistry(),
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Register("steady")
	if err != nil {
		t.Fatal(err)
	}
	var words [256]uint64
	rng := rand.New(rand.NewSource(1))
	for i := range words {
		words[i] = rng.Uint64()
	}
	// Warm up: first pushes grow nothing, but let the shard spin up.
	for i := 0; i < 8; i++ {
		if err := s.Push(words[i], 64); err != nil {
			t.Fatal(err)
		}
	}
	// 801 runs x 64 bits + warm-up stays below one n=65536 sequence, so
	// the measurement window never crosses an evaluation boundary.
	i := 0
	allocs := testing.AllocsPerRun(800, func() {
		if err := s.Push(words[i&255], 64); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push allocates %.1f times per op, want 0", allocs)
	}
	p.Shutdown()
}

// BenchmarkFleetSteadyState gates the pooled steady-state ingest claim the
// way BenchmarkMonitorSteadyState does for a single monitor: 64 live
// streams multiplexed over the shard pool, full instrumentation attached,
// sequence evaluations amortized over the n=65536 sequence — the
// -benchmem allocs/op figure must report 0.
func BenchmarkFleetSteadyState(b *testing.B) {
	cfg := Config{
		Design:     design65536(b),
		Alpha:      0.01,
		Shards:     4,
		QueueDepth: 2048,
		Obs:        obs.NewRegistry(),
	}
	p, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const nStreams = 64
	streams := make([]*Stream, nStreams)
	for i := range streams {
		s, err := p.Register("bench-" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		if err != nil {
			b.Fatal(err)
		}
		streams[i] = s
	}
	var words [1024]uint64
	rng := rand.New(rand.NewSource(2))
	for i := range words {
		words[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.SetBytes(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := streams[i%nStreams].Push(words[i&1023], 64); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	p.Shutdown()
}

// BenchmarkFleetBitSliced gates the bit-sliced aggregate ingest claim: the
// same 64 streams as BenchmarkFleetSteadyState, resident as one full lane
// group on a single shard (64+ streams/shard), on the same design and
// instrumentation, with Config.BitSliced routing the producer through
// staged batches (PushWords, the batched producer API: one atomic publish
// per staging fill instead of one per word) into the transposed
// lane-group engines. One op is one 64-bit batch, like the serial
// benchmark. The acceptance gate is ≥4x the serial fleet's ns/op at zero
// allocs/op; the staging credit protocol keeps the producer and shard
// sides pipelined.
func BenchmarkFleetBitSliced(b *testing.B) {
	cfg := Config{
		Design:     design65536(b),
		Alpha:      0.01,
		Shards:     1,
		QueueDepth: 2048,
		BitSliced:  true,
		Obs:        obs.NewRegistry(),
	}
	p, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const nStreams = 64
	streams := make([]*Stream, nStreams)
	for i := range streams {
		s, err := p.Register("bench-" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		if err != nil {
			b.Fatal(err)
		}
		streams[i] = s
	}
	var words [1024]uint64
	rng := rand.New(rand.NewSource(2))
	for i := range words {
		words[i] = rng.Uint64()
	}
	// Fill every lane group before the timed section so adoption (the one
	// allocating step) is done and all 64 lanes per shard are resident.
	for j := 0; j < 2*stageBatches; j++ {
		for _, s := range streams {
			if err := s.Push(words[j&1023], 64); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.SetBytes(8)
	b.ResetTimer()
	const run = 64 // words per PushWords call; b.N still counts words
	for i, n := 0, 0; i < b.N; i += run {
		k := run
		if left := b.N - i; k > left {
			k = left
		}
		off := n * run & 1023
		if err := streams[n%nStreams].PushWords(words[off : off+k]); err != nil {
			b.Fatal(err)
		}
		n++
	}
	b.StopTimer()
	p.Shutdown()
}

// BenchmarkFleetRegisterDetach measures pooled stream churn: after the
// first generation, monitor recycling means a register/detach cycle
// allocates only the stream handle, never a hardware block or evaluator.
func BenchmarkFleetRegisterDetach(b *testing.B) {
	cfg := Config{
		Design:     design65536(b),
		Alpha:      0.01,
		Shards:     2,
		QueueDepth: 64,
	}
	p, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := p.Register("churn")
	if err != nil {
		b.Fatal(err)
	}
	s.Detach() // prime the recycler
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := p.Register("churn")
		if err != nil {
			b.Fatal(err)
		}
		s.Detach()
	}
	b.StopTimer()
	p.Shutdown()
}
