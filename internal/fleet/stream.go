package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/trng"
)

// Stream is one tenant's handle on the fleet. The producer side (Push,
// PushFault, Detach) is called by the tenant's ingest goroutine; the
// processing side runs on the stream's shard goroutine. One producer
// goroutine per stream — the pool itself may host thousands of streams
// concurrently, but a single stream's pushes must not race each other, or
// batch order (and therefore the verdict sequence) would be undefined.
type Stream struct {
	pool   *Pool
	sh     *shard
	tenant string
	idx    int // position in pool.list, maintained under pool.mu

	// Producer-side state: atomics so Detach/finalize and the stall
	// sweeper can read them from other goroutines.
	detached   atomic.Bool
	offered    atomic.Int64
	shedCount  atomic.Int64
	sampledOut atomic.Int64
	congested  atomic.Int64 // congested-offer counter driving DegradeSample
	lastPush   atomic.Int64 // Clock() stamp; only when StreamDeadline > 0

	// pushMu orders the producer-side check-then-enqueue against Detach:
	// once Detach has enqueued the detach item (under this mutex, after
	// setting detached), no word or fault item for this stream can follow
	// it into the queue. Without the ordering, a push that passed the
	// detached check could land behind the detach item — processed against
	// a finalized stream — or behind the shutdown stop item, blocking the
	// producer forever on a queue nothing drains.
	pushMu     sync.Mutex
	detachOnce sync.Once
	done       chan struct{} // closed by finalize; publishes final
	final      StreamReport

	// Shard-side state: owned by the shard goroutine until done closes
	// (the channel close publishes it to Detach callers).
	mon              *core.Monitor
	policy           *core.AlarmPolicy
	acceptedBatches  int64
	discardedBatches int64
	sequences        int
	seqPass, seqFail int
	quarantined      int
	retries          int
	watchdogs        int
	faults           int
	quarantineRun    int // consecutive quarantines since the last accepted sequence
	faultRun         int // consecutive hard faults since the last accepted sequence
	breakerOpen      bool
	latched          bool
	events           []core.Event

	tobs tenantObs // opt-in per-tenant handles; zero value is all no-ops
}

// Tenant names the stream.
func (s *Stream) Tenant() string { return s.tenant }

// Push offers one batch of up to 64 bits (bit i of w is the i-th bit
// chronologically) to the stream's shard. What happens when the shard's
// bounded queue is full depends on the pool's ShedPolicy: Block applies
// backpressure, ShedNewest returns ErrShed, DegradeSample returns
// ErrSampledOut for all but one in SampleEvery congested offers. The call
// is allocation-free on every path but the argument-error one.
func (s *Stream) Push(w uint64, nbits int) error {
	if nbits < 1 || nbits > 64 {
		return fmt.Errorf("fleet: word size %d out of range [1,64]", nbits)
	}
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	if s.detached.Load() {
		return ErrDetached
	}
	s.offered.Add(1)
	if s.pool.cfg.StreamDeadline > 0 {
		s.lastPush.Store(s.pool.cfg.Clock())
	}
	it := item{s: s, w: w, nbits: uint8(nbits), kind: itemWord}
	switch s.pool.cfg.Policy {
	case ShedNewest:
		select {
		case s.sh.queue <- it:
		default:
			s.shedCount.Add(1)
			s.pool.fobs.batchesShed.Inc()
			s.tobs.dropped.Inc()
			return ErrShed
		}
	case DegradeSample:
		select {
		case s.sh.queue <- it:
		default:
			c := s.congested.Add(1)
			if (c-1)%int64(s.pool.cfg.SampleEvery) != 0 {
				s.sampledOut.Add(1)
				s.pool.fobs.batchesSampledOut.Inc()
				s.tobs.dropped.Inc()
				return ErrSampledOut
			}
			// The sampled batch takes backpressure for its slot.
			s.sh.queue <- it
		}
	default: // Block
		s.sh.queue <- it
	}
	return nil
}

// PushFault delivers a source fault event to the stream, in order with its
// batches. Fault events are control plane: they are never shed, they take
// backpressure for their queue slot regardless of policy.
func (s *Stream) PushFault(err error) error {
	if err == nil {
		return nil
	}
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	if s.detached.Load() {
		return ErrDetached
	}
	if s.pool.cfg.StreamDeadline > 0 {
		s.lastPush.Store(s.pool.cfg.Clock())
	}
	s.sh.queue <- item{s: s, err: err, kind: itemFault}
	return nil
}

// Detach removes the stream from the fleet: queued batches are still
// processed (drain, not discard), the monitor's partial results are
// flushed into the returned StreamReport, and the monitor returns to the
// pool for the next tenant. Detach is idempotent and safe to call
// concurrently with Shutdown and with the stream's own producer: a Push
// or PushFault racing the detach either lands before the detach item
// (drained normally) or fails with ErrDetached — pushMu makes the detach
// item the last item this stream ever enqueues.
func (s *Stream) Detach() StreamReport {
	s.detachOnce.Do(func() {
		s.pushMu.Lock()
		s.detached.Store(true)
		s.sh.queue <- item{s: s, kind: itemDetach}
		s.pushMu.Unlock()
	})
	<-s.done
	return s.final
}

// ---- shard-side processing (shard goroutine only) ----

// ingestWord feeds one accepted batch into the monitor, splitting it at
// sequence boundaries and handling verified-readout mismatches with the
// Supervisor's quarantine semantics.
func (s *Stream) ingestWord(w uint64, nbits int) {
	fo := &s.pool.fobs
	if s.breakerOpen || s.latched {
		s.discardedBatches++
		fo.batchesDiscarded.Inc()
		return
	}
	s.acceptedBatches++
	fo.batchesAccepted.Inc()
	for nbits > 0 {
		take := s.pool.cfg.Design.N - s.mon.SequenceBits()
		if take > nbits {
			take = nbits
		}
		var rep *core.SequenceReport
		var err error
		if s.pool.cfg.VerifyReadout {
			rep, err = s.mon.FeedWordVerified(w, take)
		} else {
			rep, err = s.mon.FeedWord(w, take)
		}
		// The chunk never straddles a boundary, so on any error the whole
		// chunk was still clocked into the hardware; advance past it.
		w >>= uint(take)
		nbits -= take
		if err != nil {
			if errors.Is(err, core.ErrReadoutMismatch) {
				// Counter transmission was corrupted: discard the sequence,
				// never trust the verdict. The remaining bits of the batch
				// open the next sequence.
				s.quarantine("register readout mismatch")
				s.maybeTrip()
				continue
			}
			// Internal evaluation error — not a data defect. Quarantine
			// whatever is in flight and take the stream out of service.
			s.quarantine("internal evaluation error")
			if !s.breakerOpen {
				s.breakerOpen = true
				fo.breakerTrips.Inc()
				s.event(core.EventQuarantine, "breaker open: evaluation error: "+err.Error())
			}
			return
		}
		if rep != nil {
			s.acceptReport(rep)
			if s.latched {
				return
			}
		}
	}
}

// acceptReport folds one accepted sequence verdict into the stream.
func (s *Stream) acceptReport(rep *core.SequenceReport) {
	fo := &s.pool.fobs
	s.quarantineRun = 0
	s.faultRun = 0
	s.sequences++
	if rep.Report.Pass() {
		s.seqPass++
		fo.seqPass.Inc()
		s.tobs.pass.Inc()
	} else {
		s.seqFail++
		fo.seqFail.Inc()
		s.tobs.fail.Inc()
	}
	if s.policy != nil && s.policy.Observe(rep) && !s.latched {
		s.latched = true
		fo.alarmLatches.Inc()
		s.event(core.EventAlarmLatched, "alarm policy latched: stream out of service")
	}
}

// applyFault handles one fault event with the Supervisor's fault
// vocabulary: transient faults are absorbed and counted; watchdog and
// other hard faults quarantine the in-flight sequence and feed the
// circuit breaker.
func (s *Stream) applyFault(err error) {
	fo := &s.pool.fobs
	if s.breakerOpen || s.latched {
		// The stream is already out of service; a further fault changes
		// nothing. (Not a discarded *batch* — fault events are control
		// plane and stay out of the batch accounting identity.)
		return
	}
	s.faults++
	if errors.Is(err, trng.ErrTransient) {
		s.retries++
		fo.faultsTransient.Inc()
		return
	}
	if errors.Is(err, core.ErrWatchdog) {
		s.watchdogs++
		fo.faultsWatchdog.Inc()
		s.event(core.EventWatchdog, "stream missed its push deadline")
	} else {
		fo.faultsHard.Inc()
	}
	s.faultRun++
	s.quarantine("source fault")
	s.maybeTrip()
}

// quarantine discards the in-flight sequence, if any bits are at risk
// (same boundary exemption as the Supervisor).
func (s *Stream) quarantine(detail string) {
	if !s.mon.QuarantineInFlight() {
		return
	}
	s.quarantined++
	s.quarantineRun++
	s.pool.fobs.quarantines.Inc()
	s.tobs.quarantines.Inc()
	s.event(core.EventQuarantine, detail)
}

// maybeTrip opens the circuit breaker after QuarantineLimit consecutive
// quarantines or hard faults with no accepted sequence in between — the
// stream is not degraded at that point, it is down, and keeping it out of
// service is what protects the rest of the shard.
func (s *Stream) maybeTrip() {
	lim := s.pool.cfg.QuarantineLimit
	if lim <= 0 || s.breakerOpen {
		return
	}
	if s.quarantineRun >= lim || s.faultRun >= lim {
		s.breakerOpen = true
		s.pool.fobs.breakerTrips.Inc()
		s.event(core.EventQuarantine, "circuit breaker open: stream out of service")
	}
}

// event appends one incident to the bounded per-stream timeline and
// mirrors it into the attached registry.
func (s *Stream) event(kind core.EventKind, detail string) {
	if len(s.events) < maxStreamEvents {
		s.events = append(s.events, core.Event{
			Kind:   kind,
			Bit:    s.mon.BitsSeen(),
			Seq:    s.sequences,
			Detail: detail,
		})
	}
	if reg := s.pool.fobs.reg; reg != nil {
		s.pool.fobs.eventCounter(kind).Inc()
		reg.Emit("fleet."+kind.String(), s.mon.BitsSeen(), s.tenant+": "+detail)
	}
}

// finalize flushes the stream's results into its final report, recycles
// the monitor, unlinks the stream and publishes the report by closing
// done. Runs on the shard goroutine (or the Replayer's caller).
func (s *Stream) finalize() {
	r := StreamReport{
		Tenant:            s.tenant,
		Reports:           append([]core.SequenceReport(nil), s.mon.History()...),
		Sequences:         s.sequences,
		Passed:            s.seqPass,
		Failed:            s.seqFail,
		Quarantined:       s.quarantined,
		Retries:           s.retries,
		Watchdogs:         s.watchdogs,
		Faults:            s.faults,
		BreakerTripped:    s.breakerOpen,
		AlarmLatched:      s.latched,
		OfferedBatches:    s.offered.Load(),
		AcceptedBatches:   s.acceptedBatches,
		ShedBatches:       s.shedCount.Load(),
		SampledOutBatches: s.sampledOut.Load(),
		DiscardedBatches:  s.discardedBatches,
		BitsSeen:          s.mon.BitsSeen(),
		PartialBits:       s.mon.SequenceBits(),
		Events:            s.events,
	}
	r.Condition = r.computeCondition()
	s.final = r
	s.events = nil
	fo := &s.pool.fobs
	fo.conditionCounter(r.Condition).Inc()
	s.tobs.condition.Set(float64(r.Condition))
	s.pool.recycleMonitor(s.mon)
	s.mon = nil
	s.policy = nil
	s.pool.removeStream(s)
	close(s.done)
}
