package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hwfast"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/trng"
)

// stageBuf is one bit-sliced stream's double-buffered producer staging
// area: the producer fills one buffer while the shard drains the other.
// It hangs off the Stream behind a pointer so serial pools don't pay its
// footprint on every registration.
type stageBuf struct {
	words [2][stageBatches]uint64
	lens  [2][stageBatches]uint8
}

// Stream is one tenant's handle on the fleet. The producer side (Push,
// PushFault, Detach) is called by the tenant's ingest goroutine; the
// processing side runs on the stream's shard goroutine. One producer
// goroutine per stream — the pool itself may host thousands of streams
// concurrently, but a single stream's pushes must not race each other, or
// batch order (and therefore the verdict sequence) would be undefined.
type Stream struct {
	pool   *Pool
	sh     *shard
	tenant string
	// idx is the stream's position in pool.list.
	//trnglint:guardedby pool.mu
	idx int

	// pushMu orders the producer-side check-then-enqueue against Detach:
	// once Detach has enqueued the detach item (under this mutex, after
	// setting detached), no word or fault item for this stream can follow
	// it into the queue. Without the ordering, a push that passed the
	// detached check could land behind the detach item — processed against
	// a finalized stream — or behind the shutdown stop item, blocking the
	// producer forever on a queue nothing drains. The bit-sliced staging
	// fast path deliberately does NOT take it (see Push); every flush and
	// control operation does. It sits with the fields the Push fast path
	// touches (detached, staging cursor, stamp) so one cold stream costs
	// one producer-side cache line, not four.
	pushMu   sync.Mutex
	detached atomic.Bool
	// stCnt packs the staging generation (which of the two buffers the
	// producer fills, bits 16+) and the published batch count (low 16
	// bits). The producer's lock-free fast path publishes a staged batch
	// with a single release store of count+1; flushes (under pushMu) reset
	// the count and flip the generation. Go atomics are sequentially
	// consistent, which is what makes the Detach race resolvable: a push
	// whose post-publish detached check still reads false is ordered
	// before Detach's flush capture, so the flush provably includes it; a
	// push that reads true resolves through raceDetached.
	stCnt atomic.Uint32
	// drained records, under pushMu, the batch count the most recent flush
	// captured; raceDetached compares it against a raced push's stage
	// index to decide whether Detach's flush carried the batch out.
	//trnglint:guardedby pushMu
	drained int32
	// stamp caches cfg.StreamDeadline > 0 so the push fast path decides
	// whether to take a clock reading without chasing pool.cfg.
	stamp    bool
	lastPush atomic.Int64 // Clock() stamp; only when StreamDeadline > 0

	// Bit-sliced producer staging (Config.BitSliced pools only; credits
	// and stg are nil otherwise — the staging buffers are ~1.2KB, so
	// serial pools must not carry them in every Stream). Push accumulates
	// batches and hands them to the shard stageBatches at a time as one
	// queue item carrying only the buffer index — the shard reads the
	// batches in place and returns the single credit, so at most one
	// flushed buffer is ever in flight and the producer never overwrites
	// a buffer the shard still reads. The two pointers live here, in the
	// same cache line as the staging cursor the fast path reads anyway.
	credits chan struct{}
	stg     *stageBuf

	// Producer-side accounting: atomics so Detach/finalize and the stall
	// sweeper can read them from other goroutines.
	offered    atomic.Int64
	shedCount  atomic.Int64
	sampledOut atomic.Int64
	congested  atomic.Int64 // congested-offer counter driving DegradeSample

	detachOnce sync.Once
	done       chan struct{} // closed by finalize; publishes final
	final      StreamReport

	// Shard-side state: owned by the shard goroutine until done closes
	// (the channel close publishes it to Detach callers).
	mon              *core.Monitor
	policy           *core.AlarmPolicy
	acceptedBatches  int64
	discardedBatches int64
	sequences        int
	seqPass, seqFail int
	quarantined      int
	retries          int
	watchdogs        int
	faults           int
	quarantineRun    int // consecutive quarantines since the last accepted sequence
	faultRun         int // consecutive hard faults since the last accepted sequence
	breakerOpen      bool
	latched          bool
	events           []core.Event

	// Online anomaly tracking (Config.Online; nil otherwise). The tracker
	// is fed exactly the bits the monitor consumes, in consumption order —
	// inside feedMonitor on the serial path, and directly from the tile
	// loop on the skip-feed bit-sliced path — so its trajectory is
	// byte-identical between the two. alarmCounted makes the aggregate
	// alarm counter fire once per stream.
	tracker      *online.Tracker
	alarmCounted bool

	// Bit-sliced shard-side state: the stream's lane group and lane index
	// while sliced (grp nil on the serial path), its lane fifo (like stg,
	// ~1.2KB allocated only for bit-sliced pools), and a reusable scratch
	// for the sliceable-state hand-back.
	grp  *laneGroup
	lane int
	fifo *laneFifo
	ws   hwfast.WordStats

	tobs tenantObs // opt-in per-tenant handles; zero value is all no-ops
}

// Tenant names the stream.
func (s *Stream) Tenant() string { return s.tenant }

// Push offers one batch of up to 64 bits (bit i of w is the i-th bit
// chronologically) to the stream's shard. What happens when the shard's
// bounded queue is full depends on the pool's ShedPolicy: Block applies
// backpressure, ShedNewest returns ErrShed, DegradeSample returns
// ErrSampledOut for all but one in SampleEvery congested offers. The call
// is allocation-free on every path but the argument-error one.
//
//trnglint:hotpath
func (s *Stream) Push(w uint64, nbits int) error {
	if nbits < 1 || nbits > 64 {
		return fmt.Errorf("fleet: word size %d out of range [1,64]", nbits) //trnglint:alloc argument-validation error path, never taken at line rate
	}
	if s.credits != nil {
		// Bit-sliced pool: stage the batch lock-free; a full stage flushes
		// as one queue item, amortizing the handoff across stageBatches
		// pushes. The fast path is one plain slot write plus one atomic
		// publish — no mutex, no per-push offered add (flushes account for
		// every staged batch, kept or dropped). Only the stream's single
		// producer goroutine writes the slot and the publish word;
		// Detach's flush reads them through the stCnt acquire/release
		// edge, and the post-publish detached re-check resolves the one
		// racy interleaving (see raceDetached).
		if nbits != 64 {
			w &= lowMask(nbits)
		}
		if s.detached.Load() {
			return ErrDetached
		}
		v := s.stCnt.Load()
		idx, n := v>>16, v&0xffff
		s.stg.words[idx][n] = w
		s.stg.lens[idx][n] = uint8(nbits)
		if s.stamp {
			s.lastPush.Store(s.pool.cfg.Clock()) //trnglint:alloc injected clock, one indirect call per stamped push
		}
		s.stCnt.Store(v + 1)
		if n+1 < stageBatches {
			if s.detached.Load() {
				return s.raceDetached(int(n))
			}
			return nil
		}
		s.pushMu.Lock()
		if s.detached.Load() {
			carried := s.drained > int32(n)
			s.pushMu.Unlock()
			if carried {
				return nil
			}
			return ErrDetached
		}
		err := s.flushStaged(false) //trnglint:alloc amortized handoff: one flush per staged buffer, blocking is the backpressure policy
		s.pushMu.Unlock()
		return err
	}
	s.pushMu.Lock()
	err := s.pushSerial(w, nbits)
	s.pushMu.Unlock()
	return err
}

// pushSerial is Push's serial branch: one queue item per word, shed or
// sampled per the congestion policy. It is a separate function so the
// hot path schedules no defer — the caller brackets it with an explicit
// Lock/Unlock pair.
//
//trnglint:holds pushMu
func (s *Stream) pushSerial(w uint64, nbits int) error {
	if s.detached.Load() {
		return ErrDetached
	}
	if s.stamp {
		s.lastPush.Store(s.pool.cfg.Clock()) //trnglint:alloc injected clock, one indirect call per stamped push
	}
	s.offered.Add(1)
	it := item{s: s, w: w, nbits: uint8(nbits), kind: itemWord}
	switch s.pool.cfg.Policy {
	case ShedNewest:
		select { //trnglint:alloc shed policy decides between enqueue and drop
		case s.sh.queue <- it:
		default:
			s.shedCount.Add(1)
			s.pool.fobs.batchesShed.Inc()
			s.tobs.dropped.Inc()
			return ErrShed
		}
	case DegradeSample:
		select { //trnglint:alloc shed policy decides between enqueue and drop
		case s.sh.queue <- it:
		default:
			c := s.congested.Add(1)
			if (c-1)%int64(s.pool.cfg.SampleEvery) != 0 {
				s.sampledOut.Add(1)
				s.pool.fobs.batchesSampledOut.Inc()
				s.tobs.dropped.Inc()
				return ErrSampledOut
			}
			// The sampled batch takes backpressure for its slot.
			s.sh.queue <- it //trnglint:alloc sampled batch takes backpressure for its queue slot
		}
	default: // Block
		s.sh.queue <- it //trnglint:alloc Block policy: bounded-queue handoff is the backpressure contract
	}
	return nil
}

// PushWords offers a run of full 64-bit batches, equivalent to calling
// Push(w, 64) for each word in order but with the producer-side cost
// amortized across the run: on a bit-sliced pool the whole run is written
// into the staging buffer with a single atomic publish per staging fill
// instead of one per word, which is most of a word push's cost. The
// publish protocol is unchanged — plain slot writes, then one
// sequentially-consistent count store covering all of them, then the
// detached re-check — so the Detach race resolves exactly as for Push: a
// run whose publish is ordered before Detach's flush capture is provably
// drained. Returns the first error; an error means that word and every
// word after it were not delivered (earlier words in the run were).
//
//trnglint:hotpath
func (s *Stream) PushWords(ws []uint64) error {
	if s.credits == nil {
		for _, w := range ws {
			if err := s.Push(w, 64); err != nil {
				return err
			}
		}
		return nil
	}
	for len(ws) > 0 {
		if s.detached.Load() {
			return ErrDetached
		}
		v := s.stCnt.Load()
		idx, n := v>>16, int(v&0xffff)
		k := stageBatches - n
		if k > len(ws) {
			k = len(ws)
		}
		copy(s.stg.words[idx][n:n+k], ws[:k])
		lens := s.stg.lens[idx][n : n+k]
		for i := range lens {
			lens[i] = 64
		}
		if s.stamp {
			s.lastPush.Store(s.pool.cfg.Clock()) //trnglint:alloc injected clock, one indirect call per stamped push
		}
		s.stCnt.Store(v + uint32(k))
		if n+k < stageBatches {
			// The stage has room left, so this fill consumed the whole
			// run (k == len(ws)); on a raced detach, carried means every
			// slot through n+k−1 was drained — the full run.
			if s.detached.Load() {
				return s.raceDetached(n + k - 1)
			}
			return nil
		}
		s.pushMu.Lock()
		if s.detached.Load() {
			carried := s.drained >= int32(n+k)
			s.pushMu.Unlock()
			if carried && len(ws) == k {
				return nil
			}
			return ErrDetached
		}
		err := s.flushStaged(false) //trnglint:alloc amortized handoff: one flush per staged buffer, blocking is the backpressure policy
		s.pushMu.Unlock()
		if err != nil {
			return err
		}
		ws = ws[k:]
	}
	return nil
}

// PushFault delivers a source fault event to the stream, in order with its
// batches. Fault events are control plane: they are never shed, they take
// backpressure for their queue slot regardless of policy.
func (s *Stream) PushFault(err error) error {
	if err == nil {
		return nil
	}
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	if s.detached.Load() {
		return ErrDetached
	}
	if s.pool.cfg.StreamDeadline > 0 {
		s.lastPush.Store(s.pool.cfg.Clock())
	}
	if s.credits != nil {
		s.flushStaged(true) // staged batches precede the fault, in order
	}
	s.sh.queue <- item{s: s, err: err, kind: itemFault}
	return nil
}

// raceDetached resolves a push that published its batch concurrently with
// Detach: taking pushMu waits out the detach body, after which drained
// says whether Detach's flush captured the batch (processed — the push
// succeeded) or missed it (report ErrDetached, exactly as if the push had
// arrived after the detach; the orphaned slot is never read again).
func (s *Stream) raceDetached(n int) error {
	s.pushMu.Lock()
	carried := s.drained > int32(n)
	s.pushMu.Unlock()
	if carried {
		return nil
	}
	return ErrDetached
}

// flushStaged hands the staged batches to the shard, under pushMu. The
// control form (fault and detach flushes) always blocks for its slot; data
// flushes honor the pool's shed policy at stage granularity — when a
// congested flush is dropped, all of its staged batches are shed (or
// sampled out) together and accounted per batch.
//
//trnglint:holds pushMu
func (s *Stream) flushStaged(control bool) error {
	v := s.stCnt.Load()
	idx, cnt := v>>16, v&0xffff
	s.drained = int32(cnt)
	if cnt == 0 {
		return nil
	}
	s.offered.Add(int64(cnt))
	it := item{s: s, kind: itemBatch, w: uint64(idx)<<16 | uint64(cnt)}
	fo := &s.pool.fobs
	switch {
	case control || s.pool.cfg.Policy == Block:
		<-s.credits
		s.sh.queue <- it
	case s.pool.cfg.Policy == ShedNewest:
		select {
		case <-s.credits:
		default:
			s.dropStaged(v, &s.shedCount, fo.batchesShed)
			return ErrShed
		}
		select {
		case s.sh.queue <- it:
		default:
			s.credits <- struct{}{}
			s.dropStaged(v, &s.shedCount, fo.batchesShed)
			return ErrShed
		}
	default: // DegradeSample
		sent := false
		select {
		case <-s.credits:
			select {
			case s.sh.queue <- it:
				sent = true
			default:
				s.credits <- struct{}{}
			}
		default:
		}
		if !sent {
			c := s.congested.Add(1)
			if (c-1)%int64(s.pool.cfg.SampleEvery) != 0 {
				s.dropStaged(v, &s.sampledOut, fo.batchesSampledOut)
				return ErrSampledOut
			}
			// The sampled stage takes backpressure for its slot.
			<-s.credits
			s.sh.queue <- it
		}
	}
	// The buffer is in flight: flip the generation so the producer stages
	// into the other one until the credit returns.
	s.stCnt.Store((idx ^ 1) << 16)
	return nil
}

// dropStaged sheds the whole staged buffer, accounting every batch in it.
// The buffer was never handed off, so the generation stays put and only
// the published count resets.
func (s *Stream) dropStaged(v uint32, streamCounter *atomic.Int64, poolCounter *obs.Counter) {
	n := uint64(v & 0xffff)
	streamCounter.Add(int64(n))
	poolCounter.Add(n)
	s.tobs.dropped.Add(n)
	s.stCnt.Store(v >> 16 << 16)
}

// Detach removes the stream from the fleet: queued batches are still
// processed (drain, not discard), the monitor's partial results are
// flushed into the returned StreamReport, and the monitor returns to the
// pool for the next tenant. Detach is idempotent and safe to call
// concurrently with Shutdown and with the stream's own producer: a Push
// or PushFault racing the detach either lands before the detach item
// (drained normally) or fails with ErrDetached — pushMu makes the detach
// item the last item this stream ever enqueues.
func (s *Stream) Detach() StreamReport {
	s.detachOnce.Do(func() {
		s.pushMu.Lock()
		// detached is set before the flush captures stCnt: sequential
		// consistency then guarantees the capture includes every push
		// whose post-publish detached check read false, which is what
		// lets the lock-free staging path report those as delivered.
		s.detached.Store(true)
		if s.credits != nil {
			s.flushStaged(true) // drain, not discard: staged batches land first
		}
		s.sh.queue <- item{s: s, kind: itemDetach}
		s.pushMu.Unlock()
	})
	<-s.done
	return s.final
}

// ---- shard-side processing (shard goroutine only) ----

// ingestWord feeds one accepted batch into the monitor: the batch-outcome
// accounting (discard when out of service, accept otherwise) followed by
// the shared feed loop.
func (s *Stream) ingestWord(w uint64, nbits int) {
	fo := &s.pool.fobs
	if s.breakerOpen || s.latched {
		s.discardedBatches++
		fo.batchesDiscarded.Inc()
		return
	}
	s.acceptedBatches++
	fo.batchesAccepted.Inc()
	s.feedMonitor(w, nbits)
}

// feedMonitor runs the monitor feed loop for one batch (or batch
// fragment), splitting it at sequence boundaries and handling
// verified-readout mismatches with the Supervisor's quarantine semantics.
// No batch accounting happens here — it is the shared core of ingestWord
// and the bit-sliced tile path, which accounts at consumption instead. It
// reports whether it stopped early, dropping the remaining bits (breaker
// opened on an evaluation error, or the alarm latched): on a tile-aligned
// feed nothing is ever left unconsumed, but the flag tells the caller the
// serial contract for buffered bits of a batch that straddles the feed.
func (s *Stream) feedMonitor(w uint64, nbits int) (stopped bool) {
	fo := &s.pool.fobs
	for nbits > 0 {
		take := s.pool.cfg.Design.N - s.mon.SequenceBits() //trnglint:alloc core.Monitor boundary, measured by its own benchmarks
		if take > nbits {
			take = nbits
		}
		// The tracker sees the chunk the moment it is clocked — even a
		// chunk whose evaluation errors was clocked into the hardware, and
		// a quarantine discards bits only from the monitor's sequence, not
		// from the stream the tracker scores.
		if s.tracker != nil {
			s.tracker.Push(w, take)
		}
		var rep *core.SequenceReport
		var err error
		if s.pool.cfg.VerifyReadout {
			rep, err = s.mon.FeedWordVerified(w, take) //trnglint:alloc core.Monitor feed is the measured ingest boundary
		} else {
			rep, err = s.mon.FeedWord(w, take) //trnglint:alloc core.Monitor feed is the measured ingest boundary
		}
		// The chunk never straddles a boundary, so on any error the whole
		// chunk was still clocked into the hardware; advance past it.
		w >>= uint(take)
		nbits -= take
		if err != nil {
			if errors.Is(err, core.ErrReadoutMismatch) {
				// Counter transmission was corrupted: discard the sequence,
				// never trust the verdict. The remaining bits of the batch
				// open the next sequence.
				s.quarantine("register readout mismatch") //trnglint:alloc incident path: readout mismatch
				s.maybeTrip()                             //trnglint:alloc incident path: readout mismatch
				continue
			}
			// Internal evaluation error — not a data defect. Quarantine
			// whatever is in flight and take the stream out of service.
			s.quarantine("internal evaluation error") //trnglint:alloc incident path: evaluation error
			if !s.breakerOpen {
				s.breakerOpen = true
				fo.breakerTrips.Inc()
				s.event(core.EventQuarantine, "breaker open: evaluation error: "+err.Error()) //trnglint:alloc incident path: breaker trips at most once per stream
			}
			return true
		}
		if rep != nil {
			s.acceptReport(rep) //trnglint:alloc sequence-boundary verdict fold, amortized over Design.N bits
			if s.latched {
				return true
			}
		}
	}
	return false
}

// acceptReport folds one accepted sequence verdict into the stream.
func (s *Stream) acceptReport(rep *core.SequenceReport) {
	fo := &s.pool.fobs
	s.quarantineRun = 0
	s.faultRun = 0
	s.sequences++
	if rep.Report.Pass() {
		s.seqPass++
		fo.seqPass.Inc()
		s.tobs.pass.Inc()
	} else {
		s.seqFail++
		fo.seqFail.Inc()
		s.tobs.fail.Inc()
	}
	if s.policy != nil && s.policy.Observe(rep) && !s.latched {
		s.latched = true
		fo.alarmLatches.Inc()
		s.event(core.EventAlarmLatched, "alarm policy latched: stream out of service")
	}
	if s.tracker == nil {
		return
	}
	// Online anomaly scoring is folded in at the sequence boundary — the
	// one point both ingest paths share — so gauges, counters and the
	// optional quarantine land at identical positions on the serial and
	// bit-sliced paths. In observation mode (OnlineQuarantine false) this
	// touches only observability state, never the stream's service.
	s.tobs.anomaly.Set(s.tracker.Score())
	if !s.tracker.Alarmed() {
		return
	}
	if !s.alarmCounted {
		s.alarmCounted = true
		fo.onlineAlarms.Inc()
	}
	if s.pool.cfg.OnlineQuarantine && !s.latched {
		s.latched = true
		fo.alarmLatches.Inc()
		s.event(core.EventAlarmLatched, fmt.Sprintf(
			"online anomaly score %.2f confirmed at bit %d: stream out of service",
			s.tracker.Score(), s.tracker.DetectedAt()))
	}
}

// applyFault handles one fault event with the Supervisor's fault
// vocabulary: transient faults are absorbed and counted; watchdog and
// other hard faults quarantine the in-flight sequence and feed the
// circuit breaker.
func (s *Stream) applyFault(err error) {
	fo := &s.pool.fobs
	if s.breakerOpen || s.latched {
		// The stream is already out of service; a further fault changes
		// nothing. (Not a discarded *batch* — fault events are control
		// plane and stay out of the batch accounting identity.)
		return
	}
	s.faults++
	if errors.Is(err, trng.ErrTransient) {
		s.retries++
		fo.faultsTransient.Inc()
		return
	}
	if errors.Is(err, core.ErrWatchdog) {
		s.watchdogs++
		fo.faultsWatchdog.Inc()
		s.event(core.EventWatchdog, "stream missed its push deadline")
	} else {
		fo.faultsHard.Inc()
	}
	s.faultRun++
	s.quarantine("source fault")
	s.maybeTrip()
}

// quarantine discards the in-flight sequence, if any bits are at risk
// (same boundary exemption as the Supervisor).
func (s *Stream) quarantine(detail string) {
	if !s.mon.QuarantineInFlight() {
		return
	}
	s.quarantined++
	s.quarantineRun++
	s.pool.fobs.quarantines.Inc()
	s.tobs.quarantines.Inc()
	s.event(core.EventQuarantine, detail)
}

// maybeTrip opens the circuit breaker after QuarantineLimit consecutive
// quarantines or hard faults with no accepted sequence in between — the
// stream is not degraded at that point, it is down, and keeping it out of
// service is what protects the rest of the shard.
func (s *Stream) maybeTrip() {
	lim := s.pool.cfg.QuarantineLimit
	if lim <= 0 || s.breakerOpen {
		return
	}
	if s.quarantineRun >= lim || s.faultRun >= lim {
		s.breakerOpen = true
		s.pool.fobs.breakerTrips.Inc()
		s.event(core.EventQuarantine, "circuit breaker open: stream out of service")
	}
}

// event appends one incident to the bounded per-stream timeline and
// mirrors it into the attached registry.
func (s *Stream) event(kind core.EventKind, detail string) {
	if len(s.events) < maxStreamEvents {
		s.events = append(s.events, core.Event{
			Kind:   kind,
			Bit:    s.mon.BitsSeen(),
			Seq:    s.sequences,
			Detail: detail,
		})
	}
	if reg := s.pool.fobs.reg; reg != nil {
		s.pool.fobs.eventCounter(kind).Inc()
		reg.Emit("fleet."+kind.String(), s.mon.BitsSeen(), s.tenant+": "+detail)
	}
}

// finalize flushes the stream's results into its final report, recycles
// the monitor, unlinks the stream and publishes the report by closing
// done. Runs on the shard goroutine (or the Replayer's caller).
func (s *Stream) finalize() {
	r := StreamReport{
		Tenant:            s.tenant,
		Reports:           append([]core.SequenceReport(nil), s.mon.History()...),
		Sequences:         s.sequences,
		Passed:            s.seqPass,
		Failed:            s.seqFail,
		Quarantined:       s.quarantined,
		Retries:           s.retries,
		Watchdogs:         s.watchdogs,
		Faults:            s.faults,
		BreakerTripped:    s.breakerOpen,
		AlarmLatched:      s.latched,
		OfferedBatches:    s.offered.Load(),
		AcceptedBatches:   s.acceptedBatches,
		ShedBatches:       s.shedCount.Load(),
		SampledOutBatches: s.sampledOut.Load(),
		DiscardedBatches:  s.discardedBatches,
		BitsSeen:          s.mon.BitsSeen(),
		PartialBits:       s.mon.SequenceBits(),
		OnlineDetectedAt:  -1,
		Events:            s.events,
	}
	if s.tracker != nil {
		r.OnlineScore = s.tracker.Score()
		r.OnlineAlarmed = s.tracker.Alarmed()
		r.OnlineDetectedAt = s.tracker.DetectedAt()
		s.tobs.anomaly.Set(r.OnlineScore)
		s.pool.recycleTracker(s.tracker)
		s.tracker = nil
	}
	r.Condition = r.computeCondition()
	s.final = r
	s.events = nil
	fo := &s.pool.fobs
	fo.conditionCounter(r.Condition).Inc()
	s.tobs.condition.Set(float64(r.Condition))
	s.pool.recycleMonitor(s.mon)
	s.mon = nil
	s.policy = nil
	s.pool.removeStream(s)
	close(s.done)
}
