package fleet

import (
	"math/bits"

	"repro/internal/hwslice"
	"repro/internal/obs"
)

// Bit-sliced ingest (Config.BitSliced) regroups a shard's resident streams
// into lane groups of up to 64 and advances their word-parallelizable
// statistics through one shared hwslice engine, one transposed 64-bit tile
// at a time. The contract with the serial path is exact: every stream's
// verdicts, accounting and incident timeline stay byte-identical to its
// serial replay — slicing changes the arithmetic, never the semantics.
const (
	// stageBatches is the producer-side staging depth: Push accumulates
	// this many batches under the stream mutex and hands them to the shard
	// as one queue item, amortizing the channel handoff that dominates the
	// serial per-push cost. At 128, a stage of full batches is exactly two
	// tiles per lane.
	stageBatches = 128
	// fifoBatches bounds each lane's shard-side batch buffer. At minimum
	// batch size (1 bit) it still holds four full tiles, so a lane can
	// always be advanced once every lane has a tile's worth of bits. It
	// also holds two full staged flushes, so one producer's flush never
	// lands on an already-overflowing fifo in steady state.
	fifoBatches = 256
	// tileBurst caps how many tiles one advance gathers and absorbs per
	// lane: bursting amortizes the per-lane fifo bookkeeping (head, count,
	// readiness) over up to this many tiles, which matters because a
	// staged flush lands a whole stage's worth of tiles on a lane at once.
	tileBurst = 16
	// pressureBits lets a partially-populated group start absorbing tiles:
	// a group at offset zero normally waits for 64 lanes (a tile shared by
	// fewer streams amortizes worse, and once absorption starts no lane
	// can join until rollover), but a lane buffering this much is starving
	// and the group advances with the lanes it has. It must exceed one
	// full staged flush (stageBatches * 64 bits), or a single producer's
	// first flush would trip the gate and strand the group under-populated
	// for a whole sequence.
	pressureBits = stageBatches*64 + stageBatches*32
)

// laneFifo buffers one grouped stream's batches between the shard handoff
// and tile assembly. Batches keep their identity (word + length) rather
// than being repacked into a bit queue: batch-granular records are what
// keep the accounting and the breaker semantics — which act on batch
// boundaries — byte-identical to the serial path.
type laneFifo struct {
	ws     [fifoBatches]uint64
	ls     [fifoBatches]uint8
	head   int
	tail   int
	n      int
	cursor int // bits already consumed from the head batch
	bits   int // unconsumed bits across all buffered batches
	ragged int // buffered batches shorter than 64 bits
}

func (f *laneFifo) put(w uint64, nb uint8) {
	f.ws[f.tail] = w
	f.ls[f.tail] = nb
	f.tail = (f.tail + 1) % fifoBatches
	f.n++
	f.bits += int(nb)
	if nb != 64 {
		f.ragged++
	}
}

// putAll bulk-inserts cnt staged batches in one (possibly wrapped) copy
// pair, replacing cnt put calls on the flush path. Returns false without
// inserting anything when the batches don't all fit — the caller falls
// back to the per-batch overflow-relief path.
func (f *laneFifo) putAll(ws *[stageBatches]uint64, ls *[stageBatches]uint8, cnt int) bool {
	if f.n+cnt > fifoBatches {
		return false
	}
	n1 := fifoBatches - f.tail
	if n1 > cnt {
		n1 = cnt
	}
	copy(f.ws[f.tail:], ws[:n1])
	copy(f.ls[f.tail:], ls[:n1])
	copy(f.ws[:cnt-n1], ws[n1:cnt])
	copy(f.ls[:cnt-n1], ls[n1:cnt])
	f.tail = (f.tail + cnt) % fifoBatches
	f.n += cnt
	nb, rag := 0, 0
	for i := 0; i < cnt; i++ {
		nb += int(ls[i])
		if ls[i] != 64 {
			rag++
		}
	}
	f.bits += nb
	f.ragged += rag
	return true
}

func (f *laneFifo) pop() (uint64, uint8) {
	w, nb := f.ws[f.head], f.ls[f.head]
	f.head = (f.head + 1) % fifoBatches
	f.n--
	if nb != 64 {
		f.ragged--
	}
	return w, nb
}

// laneGroup binds up to 64 resident streams to one hwslice engine. Owned
// by the shard goroutine; all methods run there.
type laneGroup struct {
	eng    *hwslice.Group
	lanes  [64]*Stream
	nLanes int
	// ready counts attached lanes holding at least a tile's worth of
	// buffered bits, maintained at every fifo transition so advancing is
	// an O(1) readiness check per batch instead of a lane scan.
	ready int
	lw    [64]uint64            // lane-major tile for the final-tile path
	lwK   [tileBurst][64]uint64 // burst of gathered tiles, tile-major
	// accepted accumulates per-lane batch acceptances from the tile loop;
	// folding them into the stream's own counter is deferred to evict so
	// the hot loop dirties four group-local cache lines instead of one
	// Stream line per lane.
	accepted [64]uint32
}

// adopt places an unsliced, healthy, sequence-aligned stream into a lane
// group: an existing group still at offset zero if one has room, else a
// fresh (or recycled) engine. On any engine refusal the stream simply
// stays on the serial path.
func (sh *shard) adopt(s *Stream) {
	var g *laneGroup
	for _, cand := range sh.groups {
		if cand.eng.Off() == 0 && cand.nLanes < 64 {
			g = cand
			break
		}
	}
	if g == nil {
		cfg := &sh.pool.cfg
		eng, err := hwslice.New(cfg.Design.N, cfg.Design.Tests, cfg.Design.Params)
		if err != nil {
			return // withDefaults validated this; stay serial if it ever trips
		}
		g = &laneGroup{eng: eng}
		sh.groups = append(sh.groups, g)
	}
	lane := bits.TrailingZeros64(^g.eng.Active())
	if err := g.eng.Attach(lane); err != nil {
		return
	}
	if err := s.mon.Block().SetSliced(true); err != nil {
		g.eng.Detach(lane)
		return
	}
	g.lanes[lane] = s
	g.nLanes++
	s.grp, s.lane = g, lane
	fo := &sh.pool.fobs
	fo.slicedAdoptions.Inc()
	fo.slicedLanes.Add(1)
}

// fifoPut buffers one batch for a grouped stream, relieving overflow by
// advancing the group (forced past the population gate) and, when a
// straggler lane is starving everyone below the tile threshold, evicting
// it to the serial path. Eviction is safe at any tile boundary, so the
// group never deadlocks on a slow or silent producer.
func (sh *shard) fifoPut(s *Stream, w uint64, nb uint8) {
	for s.grp != nil && s.fifo.n == fifoBatches {
		g := s.grp
		straggler := g.minLane()
		if straggler != s {
			g.evict(sh, straggler, false, sh.pool.fobs.slicedEvictOverflow) //trnglint:alloc overflow relief: eviction is the degraded path
			g.tryAdvance(sh, true)
			continue
		}
		// This lane is both the fullest and the least-buffered: it is the
		// only lane left. A full fifo holds at least two tiles, so a
		// forced advance always makes room.
		g.tryAdvance(sh, true)
		if s.fifo.n == fifoBatches {
			g.evict(sh, s, false, sh.pool.fobs.slicedEvictOverflow) //trnglint:alloc overflow relief: eviction is the degraded path
		}
	}
	if s.grp == nil {
		s.ingestWord(w, int(nb))
		return
	}
	pre := s.fifo.bits
	s.fifo.put(w, nb)
	if pre < 64 && s.fifo.bits >= 64 {
		s.grp.ready++
	}
}

// minLane returns the attached stream with the fewest buffered bits.
func (g *laneGroup) minLane() *Stream {
	var min *Stream
	for _, s := range g.lanes {
		if s != nil && (min == nil || s.fifo.bits < min.fifo.bits) {
			min = s
		}
	}
	return min
}

// tryAdvance absorbs tiles while every attached lane has one buffered
// (the ready counter makes that an O(1) check). force overrides the
// population gate (fifo overflow pressure).
func (g *laneGroup) tryAdvance(sh *shard, force bool) {
	for g.nLanes > 0 && g.ready == g.nLanes {
		if !force && g.eng.Off() == 0 && g.nLanes < 64 {
			max := 0
			for _, s := range g.lanes {
				if s != nil && s.fifo.bits > max {
					max = s.fifo.bits
				}
			}
			if max < pressureBits {
				return
			}
		}
		g.step(sh)
	}
}

// step advances the group by a burst of tiles. Non-final tiles are
// gathered tile-major (up to tileBurst at a time, bounded by the
// shallowest lane) and absorbed back to back, so the per-lane fifo
// bookkeeping amortizes across the burst; when the design has residual
// engines each lane's monitor runs the same 64 bits through them in
// external mode — the original lane-major words are kept, never
// reconstructed from the transposed form. Mid-sequence feeds never stop a
// stream (evaluation, verification and alarms all happen at sequence
// end), which is what makes consuming a whole burst from the fifos before
// feeding safe. The final tile of a sequence never enters the engine:
// finalTile hands each lane its sliceable state back and finishes the
// sequence on the full internal path.
func (g *laneGroup) step(sh *shard) {
	fo := &sh.pool.fobs
	eng := g.eng
	off, n := eng.Off(), eng.N()
	if off == n-64 {
		g.finalTile(sh) //trnglint:alloc sequence-boundary hand-back, amortized over Design.N bits
		return
	}
	k := (n - 64 - off) / 64
	if k > tileBurst {
		k = tileBurst
	}
	for _, s := range g.lanes {
		if s == nil {
			continue
		}
		if t := s.fifo.bits >> 6; t < k {
			k = t
		}
	}
	acc := 0
	for l := 0; l < 64; l++ {
		s := g.lanes[l]
		if s == nil {
			continue
		}
		f := s.fifo
		// The ragged counter makes alignment O(1): with no short batch
		// buffered anywhere and no partially-consumed head, the next k
		// batches are all exactly one lane-word.
		if f.cursor == 0 && f.ragged == 0 {
			// Every consumed batch is exactly one lane-word: copy the run
			// out of the ring and update the bookkeeping once.
			for j, h := 0, f.head; j < k; j++ {
				g.lwK[j][l] = f.ws[h]
				h = (h + 1) % fifoBatches
			}
			f.head = (f.head + k) % fifoBatches
			f.n -= k
			f.bits -= k * 64
			g.accepted[l] += uint32(k)
			acc += k
		} else {
			for j := 0; j < k; j++ {
				g.lwK[j][l] = s.gather64(&acc)
			}
		}
		if f.bits < 64 {
			g.ready--
		}
	}
	fo.batchesAccepted.Add(uint64(acc))
	if err := eng.AbsorbTiles(g.lwK[:k]); err != nil {
		panic("fleet: lane group out of step: " + err.Error()) //trnglint:alloc impossible-state panic on the failure path
	}
	// With no residual engines the monitors have nothing to clock
	// mid-sequence: the boundary hand-back fast-forwards them. Feeding
	// after the whole burst preserves each stream's bit order (tile j
	// before j+1 per lane); the engine and the monitors share no state
	// between boundaries.
	if !sh.pool.skipFeed {
		for j := 0; j < k; j++ {
			for l := 0; l < 64; l++ {
				if s := g.lanes[l]; s != nil {
					s.feedMonitor(g.lwK[j][l], 64)
				}
			}
		}
	} else if sh.pool.cfg.Online != nil {
		// With the monitor feed skipped, the online trackers would never
		// see mid-sequence bits: feed them here, in the same per-lane tile
		// order the feedMonitor loop (and the serial path) would use, so a
		// stream's score trajectory is byte-identical either way.
		for j := 0; j < k; j++ {
			for l := 0; l < 64; l++ {
				if s := g.lanes[l]; s != nil {
					s.tracker.Push(g.lwK[j][l], 64)
				}
			}
		}
	}
	fo.slicedTiles.Add(uint64(k))
}

// finalTile absorbs nothing: each lane takes its sliceable state back via
// LoadWordStats and runs the sequence's last 64 bits through the full
// internal path, so evaluation, verification and alarm semantics are
// untouched by slicing.
func (g *laneGroup) finalTile(sh *shard) {
	fo := &sh.pool.fobs
	eng := g.eng
	acc := 0
	for l := 0; l < 64; l++ {
		if s := g.lanes[l]; s != nil {
			g.lw[l] = s.gather64(&acc)
			if s.fifo.bits < 64 {
				g.ready--
			}
		}
	}
	fo.batchesAccepted.Add(uint64(acc))
	for l := 0; l < 64; l++ {
		s := g.lanes[l]
		if s == nil {
			continue
		}
		eng.ExtractLane(l, &s.ws)
		if err := s.mon.LoadWordStats(&s.ws); err != nil {
			panic("fleet: sliced hand-back rejected: " + err.Error())
		}
		stopped := s.feedMonitor(g.lw[l], 64)
		if s.breakerOpen || s.latched {
			// The sequence took the stream out of service. stopped tells
			// us the serial contract for the partially-consumed head
			// batch: an early stop (evaluation error, alarm latch) drops
			// its remaining bits; a readout-mismatch breaker trip fed
			// them into the next sequence before stopping.
			g.evict(sh, s, stopped, fo.slicedEvictHealth)
			continue
		}
		if err := s.mon.Block().SetSliced(true); err != nil {
			g.evict(sh, s, false, fo.slicedEvictHealth)
		}
	}
	eng.Rollover()
	fo.slicedTiles.Inc()
}

// evict removes a stream from its lane group and returns it to the serial
// path: mid-sequence its sliceable state is handed back to its own
// monitor first (unless the boundary hand-back already happened), then
// every buffered bit drains through the normal serial ingest — same
// accounting, same breaker, same events as if the stream had never been
// sliced. dropPartial drops the partially-consumed head batch's remaining
// bits instead (the serial path stopped early inside that batch).
func (g *laneGroup) evict(sh *shard, s *Stream, dropPartial bool, why *obs.Counter) {
	eng := g.eng
	blk := s.mon.Block()
	if blk.Sliced() {
		if eng.Off() > 0 {
			eng.ExtractLane(s.lane, &s.ws)
			if err := s.mon.LoadWordStats(&s.ws); err != nil {
				panic("fleet: sliced hand-back rejected: " + err.Error())
			}
		} else if err := blk.SetSliced(false); err != nil {
			panic("fleet: leaving sliced mode: " + err.Error())
		}
	}
	eng.Detach(s.lane)
	g.lanes[s.lane] = nil
	g.nLanes--
	if s.fifo.bits >= 64 {
		g.ready--
	}
	s.acceptedBatches += int64(g.accepted[s.lane])
	g.accepted[s.lane] = 0
	s.grp = nil
	s.drainFifo(dropPartial)
	if g.nLanes == 0 {
		eng.Reset()
	}
	fo := &sh.pool.fobs
	why.Inc()
	fo.slicedLanes.Add(-1)
}

// gather64 assembles the lane's next 64 bits from its buffered batches.
// Batch accounting happens here, at consumption: a batch is accepted when
// its first bit enters a tile — the moment the serial path would have
// accepted it — so the accounting identity survives any interleaving of
// slicing, eviction and breaker trips. Grouped lanes are always in
// service (an out-of-service stream is evicted on the spot), so every
// consumed batch is an accepted batch. Pool-level acceptance is
// accumulated into acc and flushed by the caller once per tile, keeping
// the shared atomic off the per-lane path.
func (s *Stream) gather64(acc *int) uint64 {
	f := s.fifo
	if f.cursor == 0 && f.ls[f.head] == 64 {
		// Aligned producer fast path: one full batch is exactly one
		// lane-word, no masking or cursor arithmetic needed.
		s.acceptedBatches++
		*acc++
		f.bits -= 64
		w, _ := f.pop()
		return w
	}
	var w uint64
	got := 0
	for got < 64 {
		nb := int(f.ls[f.head])
		if f.cursor == 0 {
			s.acceptedBatches++
			*acc++
		}
		take := nb - f.cursor
		if take > 64-got {
			take = 64 - got
		}
		w |= f.ws[f.head] >> uint(f.cursor) & lowMask(take) << uint(got)
		f.cursor += take
		f.bits -= take
		got += take
		if f.cursor == nb {
			f.pop()
			f.cursor = 0
		}
	}
	return w
}

// drainFifo flushes every buffered bit through the serial path. The
// partially-consumed head batch was already accepted (its first bits are
// in absorbed tiles), so its remainder feeds the monitor directly — or is
// dropped when the serial contract says the stream stopped inside it.
// Whole batches go through ingestWord for full accounting (and are
// discarded there if the stream is out of service, exactly as serial
// delivery after a breaker trip would be).
func (s *Stream) drainFifo(dropPartial bool) {
	f := s.fifo
	if f.cursor > 0 {
		nb := int(f.ls[f.head])
		rem := nb - f.cursor
		if rem > 0 && !dropPartial {
			s.feedMonitor(f.ws[f.head]>>uint(f.cursor), rem)
		}
		f.bits -= rem
		f.pop()
		f.cursor = 0
	}
	for f.n > 0 {
		w, nb := f.pop()
		f.bits -= int(nb)
		s.ingestWord(w, int(nb))
	}
}

func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}
