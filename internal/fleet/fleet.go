// Package fleet multiplexes thousands of concurrent TRNG streams over a
// sharded pool of reusable core monitors — the paper's single always-on
// testing platform (Fig. 1) scaled to a multi-tenant service. Each
// registered stream owns one pooled, resettable core.Monitor (recycled
// through Reset, never reallocated while the fleet runs); streams are
// assigned round-robin to shards, and each shard is one goroutine draining
// a bounded ingest queue, so per-stream statistics are computed exactly as
// a serial single-stream run would compute them — the chaos suite proves
// verdict-level byte identity for every stream that was not shed.
//
// Robustness is the design driver:
//
//   - Backpressure: every shard queue is bounded. The Block policy makes
//     Push block (pure backpressure); ShedNewest drops the offered batch
//     when the queue is full (reported per tenant and in the aggregate
//     counters); DegradeSample degrades a congested stream to sampled
//     ingest — it keeps one of every SampleEvery batches offered while
//     congested, so a tenant whose ingest outruns evaluation is still
//     monitored, at reduced resolution, instead of silently dropped.
//   - Fault isolation: source faults are per-stream events. A transient
//     fault (trng.ErrTransient) is counted and absorbed; a hard fault
//     quarantines the in-flight sequence exactly as core.Supervisor does
//     (the hardware is reset, nothing is evaluated on suspect bits); a
//     run of consecutive quarantines or hard faults trips a per-stream
//     circuit breaker that takes only that stream out of service —
//     Condition vocabulary, quarantine semantics and event kinds are
//     shared with core.Supervisor, and one misbehaving tenant cannot
//     starve its shard or perturb any other stream's verdicts.
//   - Admission control: Register fails fast with typed errors
//     (ErrFleetFull, ErrDuplicateTenant, ErrShuttingDown).
//   - Clean lifecycle: streams register and detach mid-flight; Detach and
//     Shutdown drain the queues and flush every stream's partial results
//     as a StreamReport (completed-sequence reports, counters, incident
//     timeline), and detached monitors return to the pool.
//
// Two opt-in ingest extensions preserve the serial contract bit for bit:
//
//   - Bit-sliced ingest (Config.BitSliced): each shard regroups resident
//     streams into 64-lane groups advanced through one transposed
//     internal/hwslice engine, one 64-bit tile per call. Sequence
//     boundaries and lane evictions hand each lane's state back to its
//     own monitor, so verdicts, alarms, breaker trips and accounting are
//     byte-identical to the serial path (DESIGN.md §6.2).
//   - Online anomaly tracking (Config.Online): every stream carries a
//     pooled internal/online tracker fed the same bits as its monitor
//     (per take-chunk on the serial path, per lane-group tile on the
//     sliced path — Push is segmentation-invariant, so the trajectories
//     coincide). Observation-only unless Config.OnlineQuarantine latches
//     confirmed alarms at the next sequence boundary (DESIGN.md §6.3).
//
// Everything is observable through internal/obs: aggregate admission,
// batch-outcome, fault, quarantine, breaker and verdict counters, plus
// per-shard queue-depth gauges and optional per-tenant families — shed
// and degraded ingest is accounted, never silent.
//
// The package is deterministic per stream: verdicts depend only on the
// bytes (and fault events) pushed into that stream, in order, never on
// scheduling. The only wall-clock dependence is the optional stall
// sweeper (StreamDeadline), which is off by default and replaceable
// through Config.Clock.
//
//trnglint:deterministic
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/hwblock"
	"repro/internal/hwslice"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/sweval"
)

// Typed admission and data-plane errors. Producers match them with
// errors.Is; they are sentinels so the hot path never allocates.
var (
	// ErrFleetFull rejects an admission over Config.MaxStreams.
	ErrFleetFull = errors.New("fleet: admission rejected: fleet at capacity")
	// ErrDuplicateTenant rejects a second registration of a live tenant.
	ErrDuplicateTenant = errors.New("fleet: admission rejected: tenant already registered")
	// ErrShuttingDown rejects admissions and pushes once Shutdown began.
	ErrShuttingDown = errors.New("fleet: pool is shutting down")
	// ErrDetached rejects pushes to a stream that has been detached.
	ErrDetached = errors.New("fleet: stream is detached")
	// ErrShed reports that the offered batch was dropped by the ShedNewest
	// policy. The push "succeeded" operationally — the caller may keep
	// pushing — but the batch is gone and the stream is marked shed.
	ErrShed = errors.New("fleet: batch shed: shard queue full")
	// ErrSampledOut reports that the offered batch was dropped by the
	// DegradeSample policy (the stream is congested and this batch was not
	// the sampled one).
	ErrSampledOut = errors.New("fleet: batch sampled out: stream degraded to sampled ingest")
)

// ShedPolicy selects what Push does when a shard's ingest queue is full.
type ShedPolicy int

const (
	// Block applies pure backpressure: Push blocks until the shard
	// drains. No data is ever lost; producers slow to evaluation speed.
	Block ShedPolicy = iota
	// ShedNewest drops the offered batch and returns ErrShed. The stream
	// keeps running on the batches that do land, but its verdicts are no
	// longer comparable to a lossless serial run (StreamReport.Shed).
	ShedNewest
	// DegradeSample degrades a congested stream to sampled ingest: while
	// the queue is full, one of every SampleEvery offered batches is
	// delivered (blocking for its slot) and the rest return ErrSampledOut.
	DegradeSample
)

// String names the policy for flags and reports.
func (p ShedPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case ShedNewest:
		return "shed"
	case DegradeSample:
		return "sample"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseShedPolicy parses the String form.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "shed":
		return ShedNewest, nil
	case "sample":
		return DegradeSample, nil
	}
	return 0, fmt.Errorf("fleet: unknown shed policy %q (want block, shed or sample)", s)
}

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultQueueDepth  = 1024
	DefaultSampleEvery = 8
	DefaultKeepReports = 16
	// maxStreamEvents bounds each stream's retained incident timeline;
	// later incidents are still counted, just not logged.
	maxStreamEvents = 64
)

// Config tunes a Pool.
type Config struct {
	// Design is the monitored testing-block design (one per pool; every
	// stream of the pool runs this design).
	Design hwblock.Config
	// Alpha is the level of significance of the software evaluation.
	Alpha float64
	// Opts are passed to the critical-value derivation.
	Opts []sweval.Option

	// Shards is the number of worker goroutines; ≤ 0 means GOMAXPROCS.
	Shards int
	// QueueDepth is the per-shard ingest-queue bound, in batches
	// (0 = DefaultQueueDepth).
	QueueDepth int
	// MaxStreams is the admission cap (0 = unlimited).
	MaxStreams int
	// Policy selects the full-queue behaviour; see ShedPolicy.
	Policy ShedPolicy
	// SampleEvery is the DegradeSample keep rate: one of every SampleEvery
	// congested batches is delivered (0 = DefaultSampleEvery; 1 delivers
	// every congested batch, degenerating to Block; negative is a
	// configuration error).
	SampleEvery int

	// QuarantineLimit trips the per-stream circuit breaker after this many
	// consecutive quarantines (or hard faults) with no accepted sequence
	// in between. 0 means core.DefaultQuarantineLimit; negative disables
	// the breaker.
	QuarantineLimit int
	// AlarmThreshold, if > 0, arms a per-stream core.AlarmPolicy latching
	// after that many consecutive failing sequences (Condition StatFail).
	AlarmThreshold int
	// VerifyReadout double-evaluates every sequence and quarantines on a
	// readout mismatch — core.Supervisor's defense, per stream.
	VerifyReadout bool
	// KeepReports bounds each stream's retained sequence reports
	// (0 = DefaultKeepReports; negative keeps everything).
	KeepReports int

	// BitSliced switches the shards to transposed ("bit-sliced") ingest:
	// resident streams are grouped into 64-wide lane groups whose
	// word-parallelizable statistics (frequency, runs, cusum, longest run)
	// advance through one shared internal/hwslice engine per group, one
	// transposed tile at a time, while each stream's own monitor runs only
	// the residual per-stream engines on the original words. Producers
	// additionally stage batches (stageBatches per queue handoff), so Push
	// throughput rises severalfold at high stream density. Verdicts,
	// accounting and incident timelines stay byte-identical to the serial
	// path; a stream that cannot stay lane-aligned (detach, hard fault,
	// starving fifo) falls back to serial ingest transparently. Requires a
	// design whose sequence length is a multiple of 64.
	BitSliced bool

	// Online, if set, runs a per-stream streaming anomaly tracker
	// (internal/online) over exactly the bits each stream's monitor
	// consumes, in consumption order — identical on the serial and
	// bit-sliced paths, so a stream's score trajectory is as deterministic
	// as its verdicts. The tracker never touches service decisions unless
	// OnlineQuarantine is also set: with Online alone the fleet is in
	// observation mode (per-tenant anomaly gauges, StreamReport score
	// fields, fleet_online_alarms_total), and every verdict, event and
	// counter is identical to a pool with Online nil.
	Online *online.Config
	// OnlineQuarantine takes a stream whose online tracker has latched out
	// of service at its next accepted sequence boundary, through the same
	// latch path as AlarmThreshold (AlarmLatched, Condition StatFail,
	// EventAlarmLatched). Boundary-latched on purpose: mid-sequence feeds
	// never stop a stream (the bit-sliced tile path depends on it), and
	// the detection bit is recorded by the tracker the moment the score
	// confirmed, so no latency measurement is lost by latching at the
	// boundary. Requires Online.
	OnlineQuarantine bool

	// StreamDeadline arms the stall sweeper: SweepStalled injects a
	// watchdog fault into any stream that has not pushed within the
	// deadline. 0 disables the sweeper and keeps the pool free of any
	// wall-clock dependence.
	StreamDeadline time.Duration
	// Clock supplies nanosecond timestamps for the stall sweeper; nil
	// means the wall clock. Tests inject a fake.
	Clock func() int64

	// Obs, if set, instruments the pool; see the package comment.
	Obs *obs.Registry
	// PerTenantObs additionally registers per-tenant verdict, shed and
	// quarantine counters (one metric per tenant — significant registry
	// growth at fleet scale, so it is opt-in).
	PerTenantObs bool
}

// withDefaults returns the normalized configuration.
func (c Config) withDefaults() (Config, error) {
	if c.Design.N < 64 {
		return c, fmt.Errorf("fleet: design %q: sequence length %d below the 64-bit word ingest floor", c.Design.Name, c.Design.N)
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.SampleEvery < 0 {
		return c, fmt.Errorf("fleet: SampleEvery %d is negative (0 selects the default, 1 delivers every congested batch)", c.SampleEvery)
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.QuarantineLimit == 0 {
		c.QuarantineLimit = core.DefaultQuarantineLimit
	}
	// KeepReports keeps the user's sentinel (negative = keep everything) so
	// Config() round-trips into New without flipping semantics; Register
	// translates to the Monitor's 0-keeps-everything convention.
	if c.KeepReports == 0 {
		c.KeepReports = DefaultKeepReports
	}
	if c.BitSliced {
		// Fail admission-time, not adoption-time: the design must be
		// expressible as a lane group (n a tile multiple, block lengths
		// dividing n). The throwaway group is the cheapest full check.
		if _, err := hwslice.New(c.Design.N, c.Design.Tests, c.Design.Params); err != nil {
			return c, fmt.Errorf("fleet: BitSliced: %w", err)
		}
	}
	if c.Online != nil {
		// Same admission-time discipline: a throwaway tracker is the full
		// validity check, so Register's per-stream construction can never
		// fail on a config the pool accepted.
		if _, err := online.New(c.Design, *c.Online); err != nil {
			return c, fmt.Errorf("fleet: Online: %w", err)
		}
	} else if c.OnlineQuarantine {
		return c, fmt.Errorf("fleet: OnlineQuarantine set without Online: no tracker to quarantine on")
	}
	if c.Clock == nil {
		//trnglint:allow determinism the stall sweeper is deliberately wall-clock (it exists to bound a silent producer); it is armed only when StreamDeadline > 0 and tests inject a fake clock
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
	return c, nil
}

// StreamReport is the flushed outcome of one stream: everything a tenant
// (or the drain-on-shutdown path) learns when the stream detaches.
type StreamReport struct {
	// Tenant names the stream.
	Tenant string
	// Reports are the retained accepted sequence reports (bounded by
	// Config.KeepReports; Sequences counts all of them).
	Reports []core.SequenceReport
	// Sequences, Passed and Failed count every evaluated sequence.
	Sequences, Passed, Failed int
	// Condition is the stream's operational verdict, in the Supervisor's
	// vocabulary: OK, Degraded, StatFail or SourceFault (a tripped
	// breaker).
	Condition core.Condition
	// Quarantined counts sequences discarded without evaluation; Retries
	// counts absorbed transient faults; Watchdogs counts stall sweeps;
	// Faults counts every fault event delivered to the stream.
	Quarantined, Retries, Watchdogs, Faults int
	// BreakerTripped reports that the quarantine circuit breaker opened
	// and the stream was taken out of service.
	BreakerTripped bool
	// AlarmLatched reports a latched statistical alarm (StatFail).
	AlarmLatched bool
	// Batch accounting: Offered = every Push; Accepted = processed by the
	// shard; Shed/SampledOut = dropped by the load-shedding policy;
	// Discarded = delivered after the breaker or alarm took the stream out
	// of service.
	OfferedBatches, AcceptedBatches, ShedBatches, SampledOutBatches, DiscardedBatches int64
	// BitsSeen is the total number of bits the monitor consumed;
	// PartialBits is the length of the in-flight sequence dropped at
	// detach (its bits are inside BitsSeen but produced no report).
	BitsSeen    int64
	PartialBits int
	// Online anomaly tracking (Config.Online): OnlineScore is the stream's
	// final exponentially-decayed anomaly score, OnlineAlarmed whether the
	// tracker's confirmation latch fired, and OnlineDetectedAt the
	// tracker-stream bit index at which it fired (−1 if it never did, or
	// if online tracking is disabled). An alarmed tracker affects
	// Condition only under Config.OnlineQuarantine.
	OnlineScore      float64
	OnlineAlarmed    bool
	OnlineDetectedAt int64
	// Events is the bounded incident timeline (quarantines, watchdogs,
	// alarm latch), in the Supervisor's event vocabulary.
	Events []core.Event
}

// Shed reports whether any batch was dropped by load shedding — if so the
// stream's verdicts are no longer comparable to a lossless serial run.
func (r *StreamReport) Shed() bool {
	return r.ShedBatches > 0 || r.SampledOutBatches > 0
}

// computeCondition folds the counters into the Supervisor's Condition
// vocabulary. Precedence mirrors Supervisor.Condition: an open breaker
// dominates (the stream is down), then a latched alarm, then degradation.
func (r *StreamReport) computeCondition() core.Condition {
	switch {
	case r.BreakerTripped:
		return core.SourceFault
	case r.AlarmLatched:
		return core.StatFail
	case r.Quarantined > 0 || r.Retries > 0 || r.Watchdogs > 0 || r.Shed():
		return core.Degraded
	}
	return core.OK
}
