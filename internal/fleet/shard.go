package fleet

import (
	"errors"

	"repro/internal/trng"
)

// item is one unit of shard work. It travels by value through the bounded
// queue channel, so the steady-state ingest path performs no heap
// allocation — the item is copied into the channel's ring buffer and out
// again. An itemBatch refers to a staged buffer by index (w packs the
// buffer index and batch count); the credit protocol keeps the buffer
// stable until the shard has copied it out.
type item struct {
	s     *Stream
	w     uint64
	err   error
	kind  uint8
	nbits uint8
}

const (
	itemWord uint8 = iota
	itemFault
	itemDetach
	itemStop
	itemBatch
)

// shard is one worker: a bounded ingest queue drained by a single
// goroutine. Because exactly one goroutine processes a shard's queue, and
// a stream is pinned to one shard for life, per-stream batch order is the
// push order — which is what makes fleet verdicts reproducible by a serial
// replay.
type shard struct {
	id        int
	pool      *Pool
	queue     chan item
	done      chan struct{}
	highWater int

	// groups are the shard's bit-sliced lane groups (Config.BitSliced);
	// owned by the shard goroutine. Emptied groups are reset in place and
	// reused by the next adoption, so steady-state churn allocates none.
	groups []*laneGroup
}

// loop drains the queue until an itemStop arrives (Pool.Shutdown enqueues
// one per shard after detaching every stream, so the stop is the last item
// the shard ever sees).
//
//trnglint:hotpath
func (sh *shard) loop() {
	defer close(sh.done) //trnglint:alloc worker lifecycle: runs once at shutdown
	fo := &sh.pool.fobs
	depth := fo.queueDepth[sh.id]
	high := fo.queueHighWater[sh.id]
	for it := range sh.queue { //trnglint:alloc blocking dequeue is the worker's idle state
		if d := len(sh.queue) + 1; d > sh.highWater {
			sh.highWater = d
			high.Set(float64(d))
		}
		if it.kind == itemStop {
			depth.Set(0)
			return
		}
		if it.s.mon == nil {
			// The stream finalized before this item was dequeued. The
			// producer side cannot cause this (pushMu orders pushes before
			// the detach item), but a non-blocking injector — the stall
			// sweeper — checks detached without the stream mutex and its
			// fault item can land behind the detach item. The check is
			// race-free here: finalize runs on this same goroutine.
			fo.lateDropped.Inc()
			depth.Set(float64(len(sh.queue)))
			continue
		}
		switch it.kind {
		case itemWord:
			it.s.ingestWord(it.w, int(it.nbits))
		case itemBatch:
			sh.handleBatch(it)
		case itemFault:
			// A hard fault quarantines the in-flight sequence, which a
			// sliced stream's monitor only knows about after the hand-back
			// and drain — and the drained batches precede the fault, in
			// push order. Transient faults touch no sequence state and
			// need no eviction.
			if it.s.grp != nil && !errors.Is(it.err, trng.ErrTransient) {
				it.s.grp.evict(sh, it.s, false, fo.slicedEvictFault) //trnglint:alloc incident path: hard-fault eviction
			}
			it.s.applyFault(it.err) //trnglint:alloc incident path: fault handling is off the data plane
		case itemDetach:
			if it.s.grp != nil {
				it.s.grp.evict(sh, it.s, false, fo.slicedEvictDetach) //trnglint:alloc teardown: detach eviction runs once per stream
			}
			it.s.finalize() //trnglint:alloc teardown: finalize runs once per stream
		}
		depth.Set(float64(len(sh.queue)))
	}
}

// handleBatch routes a staged buffer and returns the credit: a healthy
// stream at a sequence boundary is (re)adopted into a lane group and
// buffers into its lane fifo; an unsliced stream takes the serial path
// batch by batch. Routing reads the producer's buffer in place — the
// producer cannot refill it until the credit comes back, so no defensive
// copy is needed; the credit is returned as soon as the buffer is drained
// so the producer restages while the group advances.
func (sh *shard) handleBatch(it item) {
	s := it.s
	buf, cnt := int(it.w>>16), int(it.w&0xffff)
	ws, ls := &s.stg.words[buf], &s.stg.lens[buf]
	if s.grp == nil && !s.breakerOpen && !s.latched && s.mon.SequenceBits() == 0 { //trnglint:alloc core.Monitor boundary, measured by its own benchmarks
		sh.adopt(s) //trnglint:alloc per-sequence lane adoption, amortized over Design.N bits
	}
	if s.grp == nil {
		for i := 0; i < cnt; i++ {
			s.ingestWord(ws[i], int(ls[i]))
		}
		s.credits <- struct{}{} //trnglint:alloc credit return is the flow-control handoff
		return
	}
	pre := s.fifo.bits
	if s.fifo.putAll(ws, ls, cnt) {
		if pre < 64 && s.fifo.bits >= 64 {
			s.grp.ready++
		}
	} else {
		for i := 0; i < cnt; i++ {
			sh.fifoPut(s, ws[i], ls[i])
		}
	}
	s.credits <- struct{}{} //trnglint:alloc credit return is the flow-control handoff
	if g := s.grp; g != nil {
		g.tryAdvance(sh, false)
	}
}
