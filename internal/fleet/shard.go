package fleet

// item is one unit of shard work. It travels by value through the bounded
// queue channel, so the steady-state ingest path performs no heap
// allocation — the item is copied into the channel's ring buffer and out
// again.
type item struct {
	s     *Stream
	w     uint64
	err   error
	kind  uint8
	nbits uint8
}

const (
	itemWord uint8 = iota
	itemFault
	itemDetach
	itemStop
)

// shard is one worker: a bounded ingest queue drained by a single
// goroutine. Because exactly one goroutine processes a shard's queue, and
// a stream is pinned to one shard for life, per-stream batch order is the
// push order — which is what makes fleet verdicts reproducible by a serial
// replay.
type shard struct {
	id        int
	pool      *Pool
	queue     chan item
	done      chan struct{}
	highWater int
}

// loop drains the queue until an itemStop arrives (Pool.Shutdown enqueues
// one per shard after detaching every stream, so the stop is the last item
// the shard ever sees).
func (sh *shard) loop() {
	defer close(sh.done)
	fo := &sh.pool.fobs
	depth := fo.queueDepth[sh.id]
	high := fo.queueHighWater[sh.id]
	for it := range sh.queue {
		if d := len(sh.queue) + 1; d > sh.highWater {
			sh.highWater = d
			high.Set(float64(d))
		}
		if it.kind == itemStop {
			depth.Set(0)
			return
		}
		if it.s.mon == nil {
			// The stream finalized before this item was dequeued. The
			// producer side cannot cause this (pushMu orders pushes before
			// the detach item), but a non-blocking injector — the stall
			// sweeper — checks detached without the stream mutex and its
			// fault item can land behind the detach item. The check is
			// race-free here: finalize runs on this same goroutine.
			fo.lateDropped.Inc()
			depth.Set(float64(len(sh.queue)))
			continue
		}
		switch it.kind {
		case itemWord:
			it.s.ingestWord(it.w, int(it.nbits))
		case itemFault:
			it.s.applyFault(it.err)
		case itemDetach:
			it.s.finalize()
		}
		depth.Set(float64(len(sh.queue)))
	}
}
