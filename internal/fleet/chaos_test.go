package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trng"
)

// errTornBus is the chaos suite's generic hard source fault.
var errTornBus = errors.New("chaos: bus torn off mid-read")

// assertReportsIdentical requires the fleet and serial reports to be
// byte-identical: structurally (reflect.DeepEqual, which follows the
// sequence-report pointers and compares unexported state) and over their
// canonical JSON encoding.
func assertReportsIdentical(t *testing.T, got, want StreamReport) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream %s diverged from its serial run\nfleet:  %+v\nserial: %+v",
			got.Tenant, got, want)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gj, wj) {
		t.Fatalf("stream %s: JSON encodings differ\nfleet:  %s\nserial: %s", got.Tenant, gj, wj)
	}
}

// chaosOps builds the deterministic op list of one chaos stream: a defect
// zoo of healthy and stuck-at-zero payloads with injected transient
// storms, watchdog expiries and hard-fault storms that trip the breaker.
// The list is a pure function of the stream index, so the serial reference
// run replays exactly what the fleet ingested.
func chaosOps(idx int) []Op {
	rng := rand.New(rand.NewSource(int64(1_000_000 + idx)))
	words := 16 + idx%7 // 8..11 sequences at n=128, some with a partial tail
	stuck := idx%17 == 0
	nbits := 64
	if idx%5 == 3 {
		nbits = 32 // exercise sub-word batches and boundary splitting
	}
	ops := make([]Op, 0, words+44)
	for i := 0; i < words; i++ {
		w := rng.Uint64()
		if stuck {
			w = 0
		}
		ops = append(ops, Op{Kind: OpWord, W: w, N: nbits})
		if idx%7 == 0 && i%5 == 1 {
			// Transient storm: absorbed, counted, never quarantines.
			for k := 0; k < 3; k++ {
				ops = append(ops, Op{Kind: OpFault, Err: trng.ErrTransient})
			}
		}
		if idx%11 == 0 && i%6 == 2 {
			// A stall sweep: hard fault, quarantines the sequence.
			ops = append(ops, Op{Kind: OpFault, Err: core.ErrWatchdog})
		}
	}
	if idx%13 == 0 {
		// Hard-fault storm: mid-sequence faults until the default breaker
		// (16 consecutive quarantines) trips, then more traffic that must
		// be discarded identically in fleet and serial runs.
		for k := 0; k < core.DefaultQuarantineLimit+2; k++ {
			ops = append(ops, Op{Kind: OpWord, W: rng.Uint64(), N: 64})
			ops = append(ops, Op{Kind: OpFault, Err: errTornBus})
		}
		for k := 0; k < 4; k++ {
			ops = append(ops, Op{Kind: OpWord, W: rng.Uint64(), N: 64})
		}
	}
	return ops
}

// TestChaosFleetMatchesSerial is the tentpole proof: a ≥1k-stream fleet of
// defect-zoo sources with injected faults, run concurrently under -race,
// must produce per-stream reports byte-identical to each stream's serial
// single-stream replay — fault isolation means chaos on one stream never
// leaks into another's verdicts.
func TestChaosFleetMatchesSerial(t *testing.T) {
	const streams = 1024
	reg := obs.NewRegistry()
	cfg := testConfig(t)
	cfg.Shards = 8
	cfg.QueueDepth = 64
	cfg.Policy = Block // lossless: every stream must match its serial run
	cfg.Obs = reg
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reports := make([]StreamReport, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			s, err := p.Register(fmt.Sprintf("tenant-%04d", idx))
			if err != nil {
				t.Errorf("register %d: %v", idx, err)
				return
			}
			for _, op := range chaosOps(idx) {
				if err := op.Apply(s); err != nil {
					t.Errorf("stream %d: %v", idx, err)
					return
				}
			}
			reports[idx] = s.Detach()
		}(i)
	}
	wg.Wait()
	p.Shutdown()

	serialCfg := testConfig(t) // no registry: the reference run is bare
	var sumSeq, sumPass, sumFail, sumQuar, sumTrips uint64
	var sumOffered, sumAccepted, sumDiscarded int64
	sawBreaker, sawWatchdog, sawRetries, sawStatFailures := false, false, false, false
	for i := 0; i < streams; i++ {
		r := reports[i]
		if r.Shed() {
			t.Fatalf("stream %d shed batches under the Block policy", i)
		}
		want, err := ReplaySerial(serialCfg, r.Tenant, chaosOps(i))
		if err != nil {
			t.Fatal(err)
		}
		assertReportsIdentical(t, r, want)
		sumSeq += uint64(r.Sequences)
		sumPass += uint64(r.Passed)
		sumFail += uint64(r.Failed)
		sumQuar += uint64(r.Quarantined)
		if r.BreakerTripped {
			sumTrips++
			sawBreaker = true
		}
		sawWatchdog = sawWatchdog || r.Watchdogs > 0
		sawRetries = sawRetries || r.Retries > 0
		sawStatFailures = sawStatFailures || r.Failed > 0
		sumOffered += r.OfferedBatches
		sumAccepted += r.AcceptedBatches
		sumDiscarded += r.DiscardedBatches
	}
	// The zoo actually exercised every fault class.
	if !sawBreaker || !sawWatchdog || !sawRetries || !sawStatFailures {
		t.Fatalf("chaos zoo incomplete: breaker=%v watchdog=%v retries=%v statfail=%v",
			sawBreaker, sawWatchdog, sawRetries, sawStatFailures)
	}
	// Every offered batch is accounted for in exactly one outcome bucket.
	if sumOffered != sumAccepted+sumDiscarded {
		t.Fatalf("batch accounting leak: offered %d != accepted %d + discarded %d",
			sumOffered, sumAccepted, sumDiscarded)
	}
	// And the aggregate obs counters agree with the flushed reports.
	check := func(name string, labels []string, want uint64) {
		t.Helper()
		if v := reg.Counter(name, "", labels...).Value(); v != want {
			t.Fatalf("%s%v = %d, want %d", name, labels, v, want)
		}
	}
	check("fleet_sequences_total", []string{"result", "pass"}, sumPass)
	check("fleet_sequences_total", []string{"result", "fail"}, sumFail)
	check("fleet_quarantines_total", nil, sumQuar)
	check("fleet_breaker_trips_total", nil, sumTrips)
	check("fleet_streams_admitted_total", nil, streams)
	check("fleet_streams_detached_total", nil, streams)
	check("fleet_batches_total", []string{"outcome", "accepted"}, uint64(sumAccepted))
	check("fleet_batches_total", []string{"outcome", "discarded"}, uint64(sumDiscarded))
	if sumSeq != sumPass+sumFail {
		t.Fatalf("sequences %d != pass %d + fail %d", sumSeq, sumPass, sumFail)
	}
}

// TestChaosShedNewestUnderPressure overloads a single shard with a tiny
// queue so the ShedNewest policy must drop batches, then verifies the two
// acceptance properties: every shed batch is accounted (per stream and in
// the aggregate counters), and every stream that was NOT shed stays
// byte-identical to its serial replay.
func TestChaosShedNewestUnderPressure(t *testing.T) {
	const streams = 64
	reg := obs.NewRegistry()
	cfg := testConfig(t)
	cfg.Shards = 1
	cfg.QueueDepth = 2
	cfg.Policy = ShedNewest
	cfg.Obs = reg
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([][]Op, streams)
	for i := range ops {
		rng := rand.New(rand.NewSource(int64(9_000 + i)))
		list := make([]Op, 48)
		for j := range list {
			list[j] = Op{Kind: OpWord, W: rng.Uint64(), N: 64}
		}
		ops[i] = list
	}
	reports := make([]StreamReport, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			s, err := p.Register(fmt.Sprintf("burst-%02d", idx))
			if err != nil {
				t.Errorf("register %d: %v", idx, err)
				return
			}
			for _, op := range ops[idx] {
				if err := op.Apply(s); err != nil && !errors.Is(err, ErrShed) {
					t.Errorf("stream %d: %v", idx, err)
					return
				}
			}
			reports[idx] = s.Detach()
		}(i)
	}
	wg.Wait()
	p.Shutdown()

	serialCfg := testConfig(t)
	var totalShed uint64
	intact := 0
	for i, r := range reports {
		if r.OfferedBatches != int64(len(ops[i])) {
			t.Fatalf("stream %d offered %d, want %d", i, r.OfferedBatches, len(ops[i]))
		}
		if r.AcceptedBatches+r.ShedBatches != r.OfferedBatches {
			t.Fatalf("stream %d: offered %d != accepted %d + shed %d",
				i, r.OfferedBatches, r.AcceptedBatches, r.ShedBatches)
		}
		totalShed += uint64(r.ShedBatches)
		if r.Shed() {
			if r.Condition != core.Degraded {
				t.Fatalf("shed stream %d condition %v, want degraded", i, r.Condition)
			}
			continue
		}
		intact++
		want, err := ReplaySerial(serialCfg, r.Tenant, ops[i])
		if err != nil {
			t.Fatal(err)
		}
		assertReportsIdentical(t, r, want)
	}
	if totalShed == 0 {
		t.Fatal("expected shedding with 64 producers on a depth-2 queue")
	}
	if v := reg.Counter("fleet_batches_total", "", "outcome", "shed").Value(); v != totalShed {
		t.Fatalf("aggregate shed counter = %d, want %d", v, totalShed)
	}
	t.Logf("shed %d batches; %d/%d streams intact and byte-identical", totalShed, intact, streams)
}
