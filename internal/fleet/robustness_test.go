package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trng"
)

// TestLateItemsAfterDetachAreDropped pins the shard-side finalized-stream
// guard: a queue item that lands behind the detach item (the stall
// sweeper's non-blocking fault send can lose that race) must be dropped
// and counted, not processed against a finalized stream whose monitor is
// gone — that was a shard-killing nil dereference.
func TestLateItemsAfterDetachAreDropped(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 1
	reg := obs.NewRegistry()
	cfg.Obs = reg
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Register("gone")
	if err != nil {
		t.Fatal(err)
	}
	pushWords(t, s, 1, 2)
	rep := s.Detach()

	// Simulate the lost race: items addressed to the finalized stream
	// arriving after its detach item was processed.
	s.sh.queue <- item{s: s, err: core.ErrWatchdog, kind: itemFault}
	s.sh.queue <- item{s: s, w: 1, nbits: 64, kind: itemWord}
	p.Shutdown() // drains the late items before the stop; must not panic

	if v := reg.Counter("fleet_late_items_dropped_total", "").Value(); v != 2 {
		t.Fatalf("late-dropped counter = %d, want 2", v)
	}
	if again := s.Detach(); again.Sequences != rep.Sequences || again.Watchdogs != rep.Watchdogs {
		t.Fatal("late items mutated the published final report")
	}
}

// TestShutdownConcurrentWithProducers is the regression for the
// check-then-enqueue race between Push/PushFault and a Shutdown-initiated
// Detach: producers hammering a congested Block-policy pool while
// Shutdown runs must end with ErrDetached — not a nil-monitor panic, and
// not blocked forever on a queue nothing drains.
func TestShutdownConcurrentWithProducers(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 2
	cfg.QueueDepth = 1 // maximize producer/queue contention
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 8
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		s, err := p.Register(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Stream, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; ; n++ {
				var err error
				if n%64 == 63 {
					err = s.PushFault(trng.ErrTransient)
				} else {
					err = s.Push(rng.Uint64(), 64)
				}
				if errors.Is(err, ErrDetached) {
					return
				}
				if err != nil {
					t.Errorf("producer: %v", err)
					return
				}
			}
		}(s, int64(i))
	}
	time.Sleep(10 * time.Millisecond) // let the producers saturate the queues
	reports := p.Shutdown()
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("producers still blocked 30s after Shutdown — push stranded behind the stop item")
	}
	if len(reports) != producers {
		t.Fatalf("got %d reports, want %d", len(reports), producers)
	}
	for _, r := range reports {
		if r.OfferedBatches != r.AcceptedBatches+r.DiscardedBatches {
			t.Fatalf("%s: offered %d != accepted %d + discarded %d (a racing push was lost)",
				r.Tenant, r.OfferedBatches, r.AcceptedBatches, r.DiscardedBatches)
		}
	}
}

// TestSampleEveryOneIsHonored pins the Config contract: only 0 selects
// the default; SampleEvery=1 means "deliver every congested batch", i.e.
// DegradeSample degenerates to pure backpressure and nothing is dropped.
func TestSampleEveryOneIsHonored(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 1
	cfg.QueueDepth = 1
	cfg.Policy = DegradeSample
	cfg.SampleEvery = 1
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Config().SampleEvery; got != 1 {
		t.Fatalf("SampleEvery normalized to %d, want 1", got)
	}
	s, err := p.Register("hot")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	const offered = 512
	for i := 0; i < offered; i++ {
		if err := s.Push(rng.Uint64(), 64); err != nil {
			t.Fatalf("push %d: %v (SampleEvery=1 must never sample out)", i, err)
		}
	}
	r := s.Detach()
	if r.SampledOutBatches != 0 || r.AcceptedBatches != offered {
		t.Fatalf("accepted %d, sampled-out %d; want %d/0", r.AcceptedBatches, r.SampledOutBatches, offered)
	}
	p.Shutdown()
}

func TestSampleEveryNegativeRejected(t *testing.T) {
	cfg := testConfig(t)
	cfg.SampleEvery = -3
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a negative SampleEvery")
	}
}

// TestKeepReportsRoundTrip pins lossless Config() round-tripping of the
// keep-everything sentinel: feeding Pool.Config() back into New must not
// flip "keep everything" (negative) into "keep DefaultKeepReports".
func TestKeepReportsRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	cfg.KeepReports = -1
	run := func(c Config) StreamReport {
		t.Helper()
		p, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Shutdown()
		s, err := p.Register("hoarder")
		if err != nil {
			t.Fatal(err)
		}
		// Well past DefaultKeepReports sequences (2 words each).
		const sequences = DefaultKeepReports + 4
		pushWords(t, s, 21, 2*sequences)
		return s.Detach()
	}

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm := p.Config()
	p.Shutdown()
	if norm.KeepReports != -1 {
		t.Fatalf("Config() normalized KeepReports to %d, want the -1 sentinel", norm.KeepReports)
	}
	first := run(cfg)
	second := run(norm)
	want := DefaultKeepReports + 4
	if len(first.Reports) != want {
		t.Fatalf("keep-everything retained %d reports, want %d", len(first.Reports), want)
	}
	if len(second.Reports) != len(first.Reports) {
		t.Fatalf("round-tripped config retained %d reports, direct config %d — Config() is lossy",
			len(second.Reports), len(first.Reports))
	}
	// And the 0-means-default path still bounds history.
	cfg.KeepReports = 0
	bounded := run(cfg)
	if len(bounded.Reports) != DefaultKeepReports {
		t.Fatalf("default retained %d reports, want %d", len(bounded.Reports), DefaultKeepReports)
	}
}
