package fleet

import "fmt"

// OpKind tags one replayable stream operation.
type OpKind uint8

const (
	// OpWord is a Push of W/N.
	OpWord OpKind = iota
	// OpFault is a PushFault of Err.
	OpFault
	// OpRun is a PushWords of Ws — a run of full 64-bit batches,
	// equivalent to one OpWord of 64 bits per element.
	OpRun
)

// Op is one recorded stream operation. A stream's full input is its op
// list in push order; replaying the list serially reproduces the stream's
// verdicts bit for bit.
type Op struct {
	Kind OpKind
	W    uint64
	N    int
	Ws   []uint64
	Err  error
}

// Apply plays the op against a live stream handle, returning the push's
// result.
func (op Op) Apply(s *Stream) error {
	switch op.Kind {
	case OpFault:
		return s.PushFault(op.Err)
	case OpRun:
		return s.PushWords(op.Ws)
	default:
		return s.Push(op.W, op.N)
	}
}

// Replayer runs one stream's operations synchronously on the caller's
// goroutine, through the exact same shard-side code path a pooled stream
// runs — same ingest, same fault handling, same breaker, same report. It
// is the serial reference the chaos suite compares fleet output against:
// if the fleet sheds nothing, stream verdicts must be byte-identical to
// the replay.
type Replayer struct {
	s *Stream
}

// NewReplayer builds a single-stream serial pool. The configuration's
// shard/queue fields are ignored (there are no workers and no queues);
// policy, verification, breaker and report settings apply exactly as in a
// live pool.
func NewReplayer(cfg Config, tenant string) (*Replayer, error) {
	cfg.Shards = 1
	p, err := newPool(cfg, false)
	if err != nil {
		return nil, err
	}
	s, err := p.Register(tenant)
	if err != nil {
		return nil, err
	}
	return &Replayer{s: s}, nil
}

// Word ingests one batch synchronously.
func (r *Replayer) Word(w uint64, nbits int) error {
	if nbits < 1 || nbits > 64 {
		return fmt.Errorf("fleet: word size %d out of range [1,64]", nbits)
	}
	r.s.offered.Add(1)
	r.s.ingestWord(w, nbits)
	return nil
}

// Fault applies one fault event synchronously.
func (r *Replayer) Fault(err error) {
	if err == nil {
		return
	}
	r.s.applyFault(err)
}

// Finish flushes the stream and returns its report. Idempotent.
func (r *Replayer) Finish() StreamReport {
	if r.s.mon != nil {
		r.s.detached.Store(true)
		r.s.finalize()
	}
	return r.s.final
}

// ReplaySerial runs a full op list through a fresh Replayer — the serial
// single-stream reference run for one tenant.
func ReplaySerial(cfg Config, tenant string, ops []Op) (StreamReport, error) {
	r, err := NewReplayer(cfg, tenant)
	if err != nil {
		return StreamReport{}, err
	}
	for _, op := range ops {
		switch op.Kind {
		case OpFault:
			r.Fault(op.Err)
		case OpRun:
			for _, w := range op.Ws {
				if err := r.Word(w, 64); err != nil {
					return StreamReport{}, err
				}
			}
		default:
			if err := r.Word(op.W, op.N); err != nil {
				return StreamReport{}, err
			}
		}
	}
	return r.Finish(), nil
}
