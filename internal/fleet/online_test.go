package fleet

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hwblock"
	"repro/internal/obs"
	"repro/internal/online"
)

// designSliceable returns a custom n=128 design holding only the four
// word-parallelizable tests plus block frequency — no residual engines, so
// a BitSliced pool takes the skip-feed path where monitors are never fed
// mid-sequence and the online trackers must be fed from the tile loop.
func designSliceable(t testing.TB) hwblock.Config {
	t.Helper()
	cfg, err := hwblock.NewCustomConfig("sliceable-128", 128, []int{1, 2, 3, 4, 13})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// clearOnline strips the online-only report fields, for comparing an
// observation-mode run against an online-off reference.
func clearOnline(r StreamReport) StreamReport {
	r.OnlineScore = 0
	r.OnlineAlarmed = false
	r.OnlineDetectedAt = -1
	return r
}

// TestChaosOnlineObservationIsInvisible is the online-off equivalence
// proof: a concurrent chaos fleet with online scoring in observation mode
// (Online set, OnlineQuarantine off) must produce, for every stream,
// a report byte-identical — verdicts, conditions, counters, incident
// timeline — to the same stream's serial replay with online scoring
// disabled entirely. Observation mode buys the score fields and gauges
// and changes nothing else.
func TestChaosOnlineObservationIsInvisible(t *testing.T) {
	const streams = 128
	cfg := testConfig(t)
	cfg.Shards = 4
	cfg.Policy = Block
	cfg.Online = &online.Config{}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]StreamReport, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			s, err := p.Register(fmt.Sprintf("obs-%03d", idx))
			if err != nil {
				t.Errorf("register %d: %v", idx, err)
				return
			}
			for _, op := range chaosOps(idx) {
				if err := op.Apply(s); err != nil {
					t.Errorf("stream %d: %v", idx, err)
					return
				}
			}
			reports[idx] = s.Detach()
		}(i)
	}
	wg.Wait()
	p.Shutdown()

	offCfg := testConfig(t) // Online nil: the PR 7-era reference path
	alarmed := 0
	for i := range reports {
		if reports[i].OnlineAlarmed {
			alarmed++
		}
		want, err := ReplaySerial(offCfg, reports[i].Tenant, chaosOps(i))
		if err != nil {
			t.Fatal(err)
		}
		assertReportsIdentical(t, clearOnline(reports[i]), want)
	}
	// The equivalence must have been tested against live trackers, not a
	// zoo too tame to ever score.
	if alarmed == 0 {
		t.Fatal("no tracker alarmed: the observation-mode equivalence was vacuous")
	}
}

// TestChaosOnlineBitSlicedTrajectory proves a stream's anomaly-score
// trajectory is byte-identical between bit-sliced and serial ingest, on
// the skip-feed design where mid-sequence bits reach the trackers only
// through the tile loop: every report — including OnlineScore and
// OnlineDetectedAt, floats produced by thousands of EWMA updates — must
// equal the stream's serial replay under the same online config.
func TestChaosOnlineBitSlicedTrajectory(t *testing.T) {
	const streams = 96
	reg := obs.NewRegistry()
	cfg := Config{
		Design:     designSliceable(t),
		Alpha:      0.01,
		Shards:     4,
		QueueDepth: 64,
		Policy:     Block,
		BitSliced:  true,
		Online:     &online.Config{},
		Obs:        reg,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.skipFeed {
		t.Fatal("sliceable-only design did not select the skip-feed path")
	}
	reports := make([]StreamReport, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			s, err := p.Register(fmt.Sprintf("traj-%03d", idx))
			if err != nil {
				t.Errorf("register %d: %v", idx, err)
				return
			}
			for _, op := range slicedChaosOps(idx) {
				if err := op.Apply(s); err != nil {
					t.Errorf("stream %d: %v", idx, err)
					return
				}
			}
			reports[idx] = s.Detach()
		}(i)
	}
	wg.Wait()
	p.Shutdown()

	serialCfg := Config{
		Design: designSliceable(t), Alpha: 0.01, Shards: 1, QueueDepth: 64,
		Online: &online.Config{},
	}
	alarmed := 0
	for i := range reports {
		if reports[i].OnlineAlarmed {
			alarmed++
		}
		want, err := ReplaySerial(serialCfg, reports[i].Tenant, slicedChaosOps(i))
		if err != nil {
			t.Fatal(err)
		}
		assertReportsIdentical(t, reports[i], want)
	}
	if alarmed == 0 {
		t.Fatal("no tracker alarmed under slicing: trajectory identity was vacuous")
	}
	// The run must actually have exercised the tile-loop tracker feed.
	if v := reg.Counter("fleet_sliced_tiles_total", "").Value(); v == 0 {
		t.Fatal("no transposed tile was ever absorbed")
	}
	if v := reg.Counter("fleet_online_alarms_total", "").Value(); v != uint64(alarmed) {
		t.Fatalf("fleet_online_alarms_total = %d, want %d", v, alarmed)
	}
}

// TestOnlineQuarantineLatchesStream proves quarantine-on-score: a stream
// whose tracker confirms an anomaly is latched out of service at its next
// sequence boundary through the standard alarm path (AlarmLatched,
// StatFail, EventAlarmLatched naming the score), later batches are
// discarded, a healthy tenant on the same pool is untouched, and the whole
// outcome is byte-identical to its serial replay under the same config.
func TestOnlineQuarantineLatchesStream(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(t)
	cfg.Online = &online.Config{}
	cfg.OnlineQuarantine = true
	cfg.PerTenantObs = true
	cfg.Obs = reg
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, 40)
	for i := range ops {
		ops[i] = Op{Kind: OpWord, W: 0, N: 64} // stuck-at-zero
	}
	bad, err := p.Register("bad")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := op.Apply(bad); err != nil {
			t.Fatal(err)
		}
	}
	badRep := bad.Detach()

	good, err := p.Register("good")
	if err != nil {
		t.Fatal(err)
	}
	pushWords(t, good, 77, 40)
	goodRep := good.Detach()
	p.Shutdown()

	if !badRep.OnlineAlarmed || !badRep.AlarmLatched {
		t.Fatalf("stuck stream not latched: %+v", badRep)
	}
	if badRep.Condition != core.StatFail {
		t.Fatalf("condition %v, want StatFail", badRep.Condition)
	}
	if badRep.OnlineDetectedAt <= 128 {
		t.Fatalf("detection bit %d, want after the first full window", badRep.OnlineDetectedAt)
	}
	if badRep.DiscardedBatches == 0 {
		t.Fatal("no batch was discarded after the latch")
	}
	var latch *core.Event
	for i := range badRep.Events {
		if badRep.Events[i].Kind == core.EventAlarmLatched {
			latch = &badRep.Events[i]
		}
	}
	if latch == nil || !strings.Contains(latch.Detail, "online anomaly score") {
		t.Fatalf("latch event missing or unnamed: %+v", latch)
	}

	if goodRep.Condition != core.OK || goodRep.OnlineAlarmed || goodRep.OnlineDetectedAt != -1 {
		t.Fatalf("healthy tenant disturbed: %+v", goodRep)
	}

	if v := reg.Counter("fleet_online_alarms_total", "").Value(); v != 1 {
		t.Fatalf("fleet_online_alarms_total = %d, want 1", v)
	}
	if v := reg.Counter("fleet_alarm_latches_total", "").Value(); v != 1 {
		t.Fatalf("fleet_alarm_latches_total = %d, want 1", v)
	}
	if v := reg.Gauge("fleet_tenant_anomaly_score", "", "tenant", "bad").Value(); v != badRep.OnlineScore || v == 0 {
		t.Fatalf("per-tenant anomaly gauge %v, want final score %v (nonzero)", v, badRep.OnlineScore)
	}

	want, err := ReplaySerial(cfg, "bad", ops)
	if err != nil {
		t.Fatal(err)
	}
	// The replay config carries the registry; strip nothing — reports hold
	// no registry state, so full byte-identity applies.
	assertReportsIdentical(t, badRep, want)
}

// TestOnlineTrackerRecycling proves a recycled tracker carries nothing
// across tenants: a stream registered after an alarmed one detaches gets a
// tracker indistinguishable from fresh.
func TestOnlineTrackerRecycling(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 1
	cfg.Online = &online.Config{}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Register("first")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := first.Push(0, 64); err != nil {
			t.Fatal(err)
		}
	}
	if rep := first.Detach(); !rep.OnlineAlarmed {
		t.Fatalf("stuck stream never alarmed: %+v", rep)
	}
	second, err := p.Register("second")
	if err != nil {
		t.Fatal(err)
	}
	pushWords(t, second, 31, 16)
	rep := second.Detach()
	p.Shutdown()
	if rep.OnlineAlarmed || rep.OnlineDetectedAt != -1 {
		t.Fatalf("recycled tracker leaked alarm state: %+v", rep)
	}
	want, err := ReplaySerial(testConfigOnline(t), "second", wordOps(31, 16))
	if err != nil {
		t.Fatal(err)
	}
	assertReportsIdentical(t, rep, want)
}

// testConfigOnline is testConfig with default online scoring.
func testConfigOnline(t testing.TB) Config {
	cfg := testConfig(t)
	cfg.Online = &online.Config{}
	return cfg
}

// wordOps replays pushWords' seeded generator as an op list.
func wordOps(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpWord, W: rng.Uint64(), N: 64}
	}
	return ops
}

// TestOnlineConfigValidation pins the admission-time checks.
func TestOnlineConfigValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.OnlineQuarantine = true // without Online
	if _, err := New(cfg); err == nil {
		t.Fatal("OnlineQuarantine without Online did not error")
	}
	cfg = testConfig(t)
	cfg.Online = &online.Config{Window: 100} // not a multiple of 64
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid online window did not error")
	}
}
