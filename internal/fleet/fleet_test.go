package fleet

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hwblock"
	"repro/internal/obs"
	"repro/internal/trng"
)

// design128 is the shared small test design: one sequence per two 64-bit
// words, so lifecycle and boundary behaviour is cheap to exercise.
func design128(t testing.TB) hwblock.Config {
	t.Helper()
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func testConfig(t testing.TB) Config {
	return Config{Design: design128(t), Alpha: 0.01, Shards: 2, QueueDepth: 64}
}

// pushWords pushes n pseudo-random 64-bit words from a seeded generator.
func pushWords(t *testing.T, s *Stream, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if err := s.Push(rng.Uint64(), 64); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxStreams = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register("a"); !errors.Is(err, ErrDuplicateTenant) {
		t.Fatalf("duplicate tenant: got %v, want ErrDuplicateTenant", err)
	}
	if _, err := p.Register("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register("c"); !errors.Is(err, ErrFleetFull) {
		t.Fatalf("over capacity: got %v, want ErrFleetFull", err)
	}
	// Detaching frees the slot and the tenant name.
	a.Detach()
	if _, err := p.Register("a"); err != nil {
		t.Fatalf("re-register after detach: %v", err)
	}
	p.Shutdown()
	if _, err := p.Register("d"); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown: got %v, want ErrShuttingDown", err)
	}
}

func TestStreamLifecycle(t *testing.T) {
	p, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Register("tenant")
	if err != nil {
		t.Fatal(err)
	}
	// Three full sequences plus one dangling word.
	pushWords(t, s, 1, 7)
	rep := s.Detach()
	if rep.Sequences != 3 || len(rep.Reports) != 3 {
		t.Fatalf("sequences = %d (reports %d), want 3", rep.Sequences, len(rep.Reports))
	}
	if rep.PartialBits != 64 {
		t.Fatalf("partial bits = %d, want 64", rep.PartialBits)
	}
	if rep.BitsSeen != 7*64 {
		t.Fatalf("bits seen = %d, want %d", rep.BitsSeen, 7*64)
	}
	if rep.OfferedBatches != 7 || rep.AcceptedBatches != 7 {
		t.Fatalf("batches offered/accepted = %d/%d, want 7/7", rep.OfferedBatches, rep.AcceptedBatches)
	}
	if got := s.Detach(); got.Sequences != rep.Sequences {
		t.Fatal("second Detach returned a different report")
	}
	if err := s.Push(0, 64); !errors.Is(err, ErrDetached) {
		t.Fatalf("push after detach: got %v, want ErrDetached", err)
	}
	if err := s.PushFault(trng.ErrTransient); !errors.Is(err, ErrDetached) {
		t.Fatalf("fault after detach: got %v, want ErrDetached", err)
	}
	if p.Active() != 0 {
		t.Fatalf("active = %d after detach, want 0", p.Active())
	}
}

func TestShutdownDrainsAndFlushesPartials(t *testing.T) {
	p, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"z", "a", "m"} {
		s, err := p.Register(name)
		if err != nil {
			t.Fatal(err)
		}
		pushWords(t, s, int64(len(name)), 3) // 1 sequence + 64 partial bits
	}
	reports := p.Shutdown()
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	// Deterministic order: sorted by tenant.
	for i, want := range []string{"a", "m", "z"} {
		if reports[i].Tenant != want {
			t.Fatalf("report %d is %q, want %q", i, reports[i].Tenant, want)
		}
	}
	for _, r := range reports {
		if r.Sequences != 1 || r.PartialBits != 64 {
			t.Fatalf("%s: sequences=%d partial=%d, want 1/64 (queued batches must drain)",
				r.Tenant, r.Sequences, r.PartialBits)
		}
	}
	// Idempotent.
	if again := p.Shutdown(); len(again) != 0 {
		t.Fatalf("second shutdown returned %d reports, want 0", len(again))
	}
}

func TestFaultIsolationAndBreaker(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 1 // force the noisy and healthy tenants onto one shard
	cfg.QuarantineLimit = 4
	reg := obs.NewRegistry()
	cfg.Obs = reg
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := p.Register("noisy")
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := p.Register("healthy")
	if err != nil {
		t.Fatal(err)
	}
	hard := errors.New("bus torn off")

	// The noisy tenant: transient storm, then repeated mid-sequence hard
	// faults until its breaker trips; the healthy tenant interleaves clean
	// sequences on the same shard.
	healthyOps := make([]Op, 0, 64)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		if err := noisy.PushFault(trng.ErrTransient); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < cfg.QuarantineLimit+2; i++ {
		if err := noisy.Push(rng.Uint64(), 64); err != nil { // half a sequence
			t.Fatal(err)
		}
		if err := noisy.PushFault(hard); err != nil {
			t.Fatal(err)
		}
		w := rng.Uint64()
		healthyOps = append(healthyOps, Op{Kind: OpWord, W: w, N: 64})
		if err := healthy.Push(w, 64); err != nil {
			t.Fatal(err)
		}
	}
	nr := noisy.Detach()
	hr := healthy.Detach()

	if !nr.BreakerTripped || nr.Condition != core.SourceFault {
		t.Fatalf("noisy: breaker=%v condition=%v, want tripped/source-fault", nr.BreakerTripped, nr.Condition)
	}
	if nr.Retries != 8 {
		t.Fatalf("noisy retries = %d, want 8", nr.Retries)
	}
	if nr.Quarantined != cfg.QuarantineLimit {
		t.Fatalf("noisy quarantined = %d, want %d", nr.Quarantined, cfg.QuarantineLimit)
	}
	if nr.DiscardedBatches == 0 {
		t.Fatal("noisy: batches after the breaker tripped must be counted as discarded")
	}
	if nr.Sequences != 0 {
		t.Fatalf("noisy evaluated %d sequences from quarantined bits", nr.Sequences)
	}

	// The healthy tenant is untouched: byte-identical to its serial run.
	serialCfg := testConfig(t)
	want, err := ReplaySerial(serialCfg, "healthy", healthyOps)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsIdentical(t, hr, want)

	// Degradation is observable, not silent.
	if v := reg.Counter("fleet_breaker_trips_total",
		"per-stream circuit breakers opened (stream out of service)").Value(); v != 1 {
		t.Fatalf("breaker trips counter = %d, want 1", v)
	}
	if v := reg.Counter("fleet_quarantines_total",
		"in-flight sequences discarded without evaluation").Value(); v != uint64(nr.Quarantined) {
		t.Fatalf("quarantine counter = %d, want %d", v, nr.Quarantined)
	}
}

func TestShedNewestAccounting(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 1
	cfg.QueueDepth = 1
	cfg.Policy = ShedNewest
	reg := obs.NewRegistry()
	cfg.Obs = reg
	cfg.PerTenantObs = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Register("burst")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	shed := int64(0)
	const offered = 4096
	for i := 0; i < offered; i++ {
		err := s.Push(rng.Uint64(), 64)
		if errors.Is(err, ErrShed) {
			shed++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	r := s.Detach()
	if r.OfferedBatches != offered {
		t.Fatalf("offered = %d, want %d", r.OfferedBatches, offered)
	}
	if r.ShedBatches != shed {
		t.Fatalf("report sheds %d, producer saw %d", r.ShedBatches, shed)
	}
	if r.AcceptedBatches+r.ShedBatches != r.OfferedBatches {
		t.Fatalf("offered %d != accepted %d + shed %d",
			r.OfferedBatches, r.AcceptedBatches, r.ShedBatches)
	}
	if r.ShedBatches > 0 {
		if !r.Shed() || r.Condition != core.Degraded {
			t.Fatalf("shed stream: Shed()=%v condition=%v, want true/degraded", r.Shed(), r.Condition)
		}
	}
	if v := reg.Counter("fleet_batches_total", "", "outcome", "shed").Value(); v != uint64(shed) {
		t.Fatalf("aggregate shed counter = %d, want %d", v, shed)
	}
	if v := reg.Counter("fleet_tenant_dropped_batches_total", "", "tenant", "burst").Value(); v != uint64(shed) {
		t.Fatalf("per-tenant dropped counter = %d, want %d", v, shed)
	}
	p.Shutdown()
}

func TestDegradeSampleKeepsSampledFraction(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 1
	cfg.QueueDepth = 1
	cfg.Policy = DegradeSample
	cfg.SampleEvery = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Register("hot")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	sampledOut := int64(0)
	const offered = 2048
	for i := 0; i < offered; i++ {
		err := s.Push(rng.Uint64(), 64)
		if errors.Is(err, ErrSampledOut) {
			sampledOut++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	r := s.Detach()
	if sampledOut == 0 {
		t.Fatal("expected congestion with a depth-1 queue")
	}
	if r.SampledOutBatches != sampledOut {
		t.Fatalf("report sampled-out %d, producer saw %d", r.SampledOutBatches, sampledOut)
	}
	if r.AcceptedBatches+r.SampledOutBatches != r.OfferedBatches {
		t.Fatalf("offered %d != accepted %d + sampled-out %d",
			r.OfferedBatches, r.AcceptedBatches, r.SampledOutBatches)
	}
	// Degraded, not starved: the sampled fraction still flows.
	if r.AcceptedBatches == 0 {
		t.Fatal("degraded stream was starved — sampled batches must still be delivered")
	}
	if r.Condition != core.Degraded {
		t.Fatalf("condition = %v, want degraded", r.Condition)
	}
	p.Shutdown()
}

func TestSweepStalled(t *testing.T) {
	var mu sync.Mutex
	now := int64(1000)
	clock := func() int64 { mu.Lock(); defer mu.Unlock(); return now }
	tick := func(d time.Duration) { mu.Lock(); now += d.Nanoseconds(); mu.Unlock() }

	cfg := testConfig(t)
	cfg.StreamDeadline = time.Second
	cfg.Clock = clock
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alive, err := p.Register("alive")
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := p.Register("stalled")
	if err != nil {
		t.Fatal(err)
	}
	// Both streams start mid-sequence, then only one keeps pushing.
	pushWords(t, alive, 3, 1)
	pushWords(t, stalled, 4, 1)
	if n := p.SweepStalled(); n != 0 {
		t.Fatalf("swept %d streams before the deadline, want 0", n)
	}
	tick(2 * time.Second)
	pushWords(t, alive, 5, 1) // refreshes its stamp at t+2s
	if n := p.SweepStalled(); n != 1 {
		t.Fatalf("swept %d streams, want 1", n)
	}
	ar := alive.Detach()
	sr := stalled.Detach()
	if ar.Watchdogs != 0 || ar.Condition == core.Degraded {
		t.Fatalf("alive stream swept: %+v", ar)
	}
	if sr.Watchdogs != 1 || sr.Condition != core.Degraded {
		t.Fatalf("stalled stream: watchdogs=%d condition=%v, want 1/degraded", sr.Watchdogs, sr.Condition)
	}
	// The watchdog quarantined the in-flight half sequence.
	if sr.Quarantined != 1 || sr.Sequences != 0 {
		t.Fatalf("stalled stream: quarantined=%d sequences=%d, want 1/0", sr.Quarantined, sr.Sequences)
	}
	p.Shutdown()
}

func TestMonitorRecyclingDoesNotLeakAcrossTenants(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 1
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant A leaves a dirty monitor: pending partial word, mid-sequence
	// counters, history entries.
	a, err := p.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	pushWords(t, a, 42, 3)
	if err := a.Push(0xFFFF, 16); err != nil {
		t.Fatal(err)
	}
	a.Detach()

	// Tenant B reuses the recycled monitor; its verdicts must equal a
	// fresh serial run of the same words.
	b, err := p.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, 0, 8)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 8; i++ {
		w := rng.Uint64()
		ops = append(ops, Op{Kind: OpWord, W: w, N: 64})
		if err := b.Push(w, 64); err != nil {
			t.Fatal(err)
		}
	}
	got := b.Detach()
	want, err := ReplaySerial(testConfig(t), "b", ops)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsIdentical(t, got, want)
	p.Shutdown()
}

func TestAlarmPolicyLatchesStream(t *testing.T) {
	cfg := testConfig(t)
	cfg.AlarmThreshold = 2
	cfg.Shards = 1
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Register("dead")
	if err != nil {
		t.Fatal(err)
	}
	// A stuck-at-zero source fails every sequence; AIS-31 retest semantics
	// latch on the second consecutive failure.
	for i := 0; i < 10; i++ {
		if err := s.Push(0, 64); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Detach()
	if !r.AlarmLatched || r.Condition != core.StatFail {
		t.Fatalf("latched=%v condition=%v, want true/stat-fail", r.AlarmLatched, r.Condition)
	}
	if r.Sequences != 2 {
		t.Fatalf("evaluated %d sequences, want 2 (latch stops evaluation)", r.Sequences)
	}
	if r.DiscardedBatches == 0 {
		t.Fatal("batches after the latch must be counted as discarded")
	}
	p.Shutdown()
}

func TestParseShedPolicy(t *testing.T) {
	for _, p := range []ShedPolicy{Block, ShedNewest, DegradeSample} {
		got, err := ParseShedPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseShedPolicy("nope"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}
