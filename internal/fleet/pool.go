package fleet

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/sweval"
)

// Pool multiplexes many concurrent TRNG streams over a fixed set of shard
// goroutines and a recycled set of core monitors. All methods are safe for
// concurrent use; each Stream additionally has its own contract (one
// producer goroutine per stream).
type Pool struct {
	cfg Config
	// skipFeed marks a bit-sliced design with no residual engines
	// (templates, serial): sliced streams' monitors have nothing to clock
	// between sequence boundaries, so non-final tiles skip the per-lane
	// monitor feed and the boundary hand-back fast-forwards the position.
	skipFeed bool
	// cv is the one shared critical-value table: deriving it is the
	// expensive part of monitor construction, and it is read-only after
	// construction, so every monitor of the fleet shares it race-free.
	cv     *sweval.CriticalValues
	shards []*shard
	fobs   fleetObs

	// monitors recycles detached streams' monitors: acquire pops a fully
	// Reset monitor; a cold pool builds one. Steady-state churn therefore
	// allocates nothing but the Stream handle itself.
	monitors sync.Pool
	// trackers recycles detached streams' online anomaly trackers under
	// the same discipline (Config.Online pools only).
	trackers sync.Pool

	mu sync.Mutex
	//trnglint:guardedby mu
	closed bool
	// list holds the active streams; swap-removed via Stream.idx.
	//trnglint:guardedby mu
	list []*Stream
	//trnglint:guardedby mu
	byTenant map[string]*Stream
	//trnglint:guardedby mu
	nextShard int
}

// New builds the pool, derives the shared critical values, and starts the
// shard workers.
func New(cfg Config) (*Pool, error) { return newPool(cfg, true) }

// newPool is New with the shard workers optionally not started — the
// Replayer runs streams synchronously on the caller's goroutine and must
// not race a worker for them.
func newPool(cfg Config, start bool) (*Pool, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cv, err := sweval.NewCriticalValues(cfg.Design, cfg.Alpha, cfg.Opts...)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:      cfg,
		cv:       cv,
		byTenant: make(map[string]*Stream),
	}
	if cfg.BitSliced {
		p.skipFeed = true
		for _, t := range cfg.Design.Tests {
			if t == 7 || t == 8 || t == 11 || t == 12 {
				p.skipFeed = false
				break
			}
		}
	}
	p.fobs.init(cfg.Obs, cfg.Shards)
	p.shards = make([]*shard, cfg.Shards)
	for i := range p.shards {
		sh := &shard{
			id:    i,
			pool:  p,
			queue: make(chan item, cfg.QueueDepth),
			done:  make(chan struct{}),
		}
		p.shards[i] = sh
		if start {
			go sh.loop()
		}
	}
	return p, nil
}

// Config returns the normalized pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// Active reports the number of currently registered streams.
func (p *Pool) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.list)
}

// Register admits one tenant and returns its stream handle. Admission is
// controlled: the typed errors ErrFleetFull, ErrDuplicateTenant and
// ErrShuttingDown reject over-capacity, duplicate and post-shutdown
// registrations. Streams are assigned to shards round-robin.
func (p *Pool) Register(tenant string) (*Stream, error) {
	if tenant == "" {
		return nil, fmt.Errorf("fleet: empty tenant name")
	}
	// Acquire the monitor outside the pool lock: on a cold pool this
	// builds hardware state and is the slow part of admission. A rejected
	// admission returns the (already clean) monitor to the recycler.
	mon, err := p.acquireMonitor()
	if err != nil {
		return nil, err
	}
	// Config keeps the user's sentinel (negative = keep everything) so
	// Config() round-trips losslessly; translate to Monitor semantics
	// (0 = keep everything) only here.
	if p.cfg.KeepReports < 0 {
		mon.KeepHistory = 0
	} else {
		mon.KeepHistory = p.cfg.KeepReports
	}
	var policy *core.AlarmPolicy
	if p.cfg.AlarmThreshold > 0 {
		policy, err = core.NewAlarmPolicy(p.cfg.AlarmThreshold)
		if err != nil {
			p.monitors.Put(mon)
			return nil, err
		}
	}
	var tracker *online.Tracker
	if p.cfg.Online != nil {
		tracker, err = p.acquireTracker()
		if err != nil {
			p.monitors.Put(mon)
			return nil, err
		}
	}
	s := &Stream{
		pool:    p,
		tenant:  tenant,
		mon:     mon,
		policy:  policy,
		tracker: tracker,
		stamp:   p.cfg.StreamDeadline > 0,
		done:    make(chan struct{}),
	}
	if p.cfg.BitSliced {
		s.credits = make(chan struct{}, 1)
		s.credits <- struct{}{}
		s.stg = &stageBuf{}
		s.fifo = &laneFifo{}
	}
	if p.cfg.PerTenantObs && p.cfg.Obs != nil {
		s.tobs = newTenantObs(p.cfg.Obs, tenant)
	}

	p.mu.Lock()
	var reject error
	var rejected *obs.Counter
	switch {
	case p.closed:
		reject, rejected = ErrShuttingDown, p.fobs.rejectedClosed
	case p.cfg.MaxStreams > 0 && len(p.list) >= p.cfg.MaxStreams:
		reject, rejected = ErrFleetFull, p.fobs.rejectedFull
	default:
		if _, dup := p.byTenant[tenant]; dup {
			reject, rejected = ErrDuplicateTenant, p.fobs.rejectedDup
		}
	}
	if reject != nil {
		p.mu.Unlock()
		rejected.Inc()
		p.monitors.Put(mon)
		if tracker != nil {
			p.trackers.Put(tracker)
		}
		return nil, reject
	}
	s.sh = p.shards[p.nextShard]
	p.nextShard++
	if p.nextShard == len(p.shards) {
		p.nextShard = 0
	}
	s.idx = len(p.list)
	p.list = append(p.list, s)
	p.byTenant[tenant] = s
	active := len(p.list)
	p.mu.Unlock()

	if p.cfg.StreamDeadline > 0 {
		s.lastPush.Store(p.cfg.Clock())
	}
	p.fobs.admitted.Inc()
	p.fobs.active.Set(float64(active))
	return s, nil
}

// Lookup returns the live stream of a tenant, or nil.
func (p *Pool) Lookup(tenant string) *Stream {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.byTenant[tenant]
}

// Shutdown drains the fleet: every live stream is detached (its queued
// batches are processed first — drain, not discard), every partial result
// is flushed as a StreamReport, and the shard workers stop. The reports
// are sorted by tenant so shutdown output is deterministic regardless of
// shard scheduling. Shutdown is idempotent; concurrent Detach calls are
// safe and simply race to flush the same streams, and producers still
// pushing while Shutdown runs see their last racing pushes either drained
// normally or rejected with ErrDetached — never lost in a stopped queue.
func (p *Pool) Shutdown() []StreamReport {
	p.mu.Lock()
	alreadyClosed := p.closed
	p.closed = true
	streams := append([]*Stream(nil), p.list...)
	p.mu.Unlock()

	reports := make([]StreamReport, 0, len(streams))
	for _, s := range streams {
		reports = append(reports, s.Detach())
	}
	if !alreadyClosed {
		for _, sh := range p.shards {
			sh.queue <- item{kind: itemStop}
			<-sh.done
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Tenant < reports[j].Tenant })
	return reports
}

// SweepStalled injects a watchdog fault into every live stream whose last
// push is older than Config.StreamDeadline — the fleet-level analogue of
// the Supervisor's per-bit watchdog, at per-stream granularity. The
// injection is non-blocking: a stream on a congested shard is skipped this
// sweep and caught by the next one, so the sweeper itself can never stall
// on a full queue. Because the send deliberately stays outside the stream
// mutex (a sweep must never block behind a backpressured producer), a
// sweep item can lose its race with Detach and land behind the detach
// item; the shard's finalized-stream guard drops it and counts it in
// fleet_late_items_dropped_total. Returns the number of streams swept.
// No-op (0) when no deadline is configured.
func (p *Pool) SweepStalled() int {
	if p.cfg.StreamDeadline <= 0 {
		return 0
	}
	now := p.cfg.Clock()
	cutoff := now - p.cfg.StreamDeadline.Nanoseconds()
	p.mu.Lock()
	streams := append([]*Stream(nil), p.list...)
	p.mu.Unlock()
	swept := 0
	for _, s := range streams {
		if s.detached.Load() {
			continue
		}
		last := s.lastPush.Load()
		if last == 0 || last > cutoff {
			continue
		}
		select {
		case s.sh.queue <- item{s: s, err: core.ErrWatchdog, kind: itemFault}:
			// Re-arm so one stall raises one watchdog per deadline window,
			// not one per sweep tick.
			s.lastPush.Store(now)
			swept++
		default:
		}
	}
	return swept
}

// acquireMonitor pops a recycled monitor or builds a fresh one around the
// shared critical values.
func (p *Pool) acquireMonitor() (*core.Monitor, error) {
	if m, ok := p.monitors.Get().(*core.Monitor); ok {
		return m, nil
	}
	return core.NewMonitorWithValues(p.cfg.Design, p.cv)
}

// recycleMonitor resets a detached stream's monitor — every piece of
// per-run state, proven by the core cross-contamination regression test —
// and returns it to the pool.
func (p *Pool) recycleMonitor(m *core.Monitor) {
	m.Reset()
	p.monitors.Put(m)
}

// acquireTracker pops a recycled online tracker or builds a fresh one.
// Construction cannot fail on a config the pool accepted (withDefaults
// builds a throwaway tracker as its validity check), but the error is
// propagated anyway rather than papered over.
func (p *Pool) acquireTracker() (*online.Tracker, error) {
	if t, ok := p.trackers.Get().(*online.Tracker); ok {
		return t, nil
	}
	return online.New(p.cfg.Design, *p.cfg.Online)
}

// recycleTracker resets a detached stream's tracker and returns it to the
// pool.
func (p *Pool) recycleTracker(t *online.Tracker) {
	t.Reset()
	p.trackers.Put(t)
}

// removeStream unlinks a finalized stream (shard goroutine only).
func (p *Pool) removeStream(s *Stream) {
	p.mu.Lock()
	if s.idx >= 0 && s.idx < len(p.list) && p.list[s.idx] == s {
		last := len(p.list) - 1
		p.list[s.idx] = p.list[last]
		p.list[s.idx].idx = s.idx
		p.list[last] = nil
		p.list = p.list[:last]
		delete(p.byTenant, s.tenant)
	}
	active := len(p.list)
	p.mu.Unlock()
	p.fobs.active.Set(float64(active))
	p.fobs.detached.Inc()
}
