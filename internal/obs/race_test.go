package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestConcurrentRegistry hammers one registry from many goroutines —
// registering, updating, emitting and scraping at once — and then checks
// the aggregate counts. Run under -race (the CI default) this pins the
// registry's only concurrency contract: everything is safe to share.
func TestConcurrentRegistry(t *testing.T) {
	const goroutines = 8
	const perG = 500
	reg := NewRegistry()
	reg.SetTraceCapacity(goroutines * perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines share one label set, the rest get their
			// own, so both same-handle and new-member paths race.
			label := "shared"
			if g%2 == 1 {
				label = fmt.Sprintf("own-%d", g)
			}
			for i := 0; i < perG; i++ {
				reg.Counter("race_total", "racing counter", "who", label).Inc()
				reg.Gauge("race_gauge", "racing gauge", "who", label).Add(1)
				reg.Histogram("race_hist", "racing histogram", []float64{1, 2, 4}).
					Observe(float64(i % 5))
				reg.Emit("race.event", int64(i), "")
				if i%100 == 0 {
					if err := reg.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
					}
					if err := reg.WriteJSON(io.Discard, 0); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var counted uint64
	counted += reg.Counter("race_total", "", "who", "shared").Value()
	for g := 1; g < goroutines; g += 2 {
		counted += reg.Counter("race_total", "", "who", fmt.Sprintf("own-%d", g)).Value()
	}
	if want := uint64(goroutines * perG); counted != want {
		t.Errorf("total counter increments = %d, want %d", counted, want)
	}
	if got := reg.Histogram("race_hist", "", []float64{1, 2, 4}).Count(); got != goroutines*perG {
		t.Errorf("histogram observations = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Trace().Total(); got != goroutines*perG {
		t.Errorf("trace emissions = %d, want %d", got, goroutines*perG)
	}
}
