package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := golden()
	reg.Emit("test.event", 5, "hello")
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	text, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{code="200"} 3`,
		`size_bytes_bucket{le="+Inf"} 3`,
		// The layer reports through itself: this scrape and the trace event
		// above are visible in the exposition.
		`obs_trace_events_total{kind="test.event"} 1`,
		`obs_scrapes_total{endpoint="metrics"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %q:\n%s", want, text)
		}
	}

	body, ctype := get("/metrics.json")
	if ctype != "application/json" {
		t.Errorf("/metrics.json content type = %q", ctype)
	}
	var export struct {
		TS       int64 `json:"ts_ms"`
		Families []struct {
			Name string `json:"name"`
		} `json:"families"`
	}
	if err := json.Unmarshal([]byte(body), &export); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
	if export.TS <= 0 {
		t.Errorf("/metrics.json ts_ms = %d, want a positive scrape stamp", export.TS)
	}
	names := make(map[string]bool)
	for _, f := range export.Families {
		names[f.Name] = true
	}
	if !names["req_total"] || !names["obs_scrapes_total"] {
		t.Errorf("/metrics.json families = %v", names)
	}

	trace, ctype := get("/trace")
	if ctype != "application/x-ndjson" {
		t.Errorf("/trace content type = %q", ctype)
	}
	if want := `{"seq":0,"kind":"test.event","bit":5,"detail":"hello"}` + "\n"; trace != want {
		t.Errorf("/trace = %q, want %q", trace, want)
	}

	// pprof is wired: the index must answer.
	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Error("/debug/pprof/ index did not render")
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "liveness").Inc()
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("served exposition missing counter:\n%s", body)
	}
}
