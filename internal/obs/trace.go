package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one entry of the ring-buffered trace. Events carry no wall
// time: they are ordered by Seq, the global emission index, and located in
// the monitored stream by Bit, the absolute bit position the emitter was
// at (-1 when the event has no stream position). That keeps emitters in
// //trnglint:deterministic packages bit-reproducible — the same run always
// produces the same trace.
type Event struct {
	// Seq is the 0-based emission index over the trace's lifetime; it
	// keeps counting when the ring wraps, so Snapshot()[0].Seq reveals how
	// many older events were evicted.
	Seq uint64 `json:"seq"`
	// Kind labels the event class (e.g. "supervisor.quarantine",
	// "fault.flaky").
	Kind string `json:"kind"`
	// Bit is the absolute bit-stream position, or -1 if not applicable.
	Bit int64 `json:"bit"`
	// Detail is the human-readable payload.
	Detail string `json:"detail,omitempty"`
}

// Trace is a fixed-capacity ring buffer of events: the last capacity
// events are retained, older ones are evicted in FIFO order. All methods
// are safe for concurrent use and are no-ops on a nil *Trace.
type Trace struct {
	mu sync.Mutex
	//trnglint:guardedby mu
	buf []Event
	// next counts total events ever emitted.
	//trnglint:guardedby mu
	next uint64
}

// NewTrace returns an empty trace retaining the last capacity events
// (capacity < 1 falls back to DefaultTraceCapacity).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Emit appends one event, evicting the oldest if the ring is full.
func (t *Trace) Emit(kind string, bit int64, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e := Event{Seq: t.next, Kind: kind, Bit: bit, Detail: detail}
	t.next++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		// Ring slot: the event with Seq s lives at s % cap.
		t.buf[e.Seq%uint64(cap(t.buf))] = e
	}
	t.mu.Unlock()
}

// Len reports how many events are currently retained.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total reports how many events were ever emitted, including evicted ones.
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Snapshot returns the retained events oldest-first.
func (t *Trace) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	// Full ring: the oldest retained event is next-cap, stored at its
	// Seq % cap slot.
	c := uint64(cap(t.buf))
	for s := t.next - c; s < t.next; s++ {
		out = append(out, t.buf[s%c])
	}
	return out
}

// WriteJSONLines writes the retained events oldest-first, one JSON object
// per line — the -trace-out format of cmd/otftest and the /trace endpoint
// payload.
func (t *Trace) WriteJSONLines(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
