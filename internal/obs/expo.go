package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4). Families are sorted by name and members by label
// signature, so two scrapes of identical state are byte-identical — the
// property the exposition golden test pins. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, e := range f.members {
			if err := writeMetricText(w, f.family, e); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeMetricText(w io.Writer, f *family, e *metricEntry) error {
	switch f.typ {
	case "counter":
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(e.labels, nil), e.c.Value())
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(e.labels, nil), formatFloat(e.g.Value()))
		return err
	case "histogram":
		counts, sum, n := e.h.snapshot()
		cum := uint64(0)
		for i, bound := range f.bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(e.labels, []string{"le", formatFloat(bound)}), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelString(e.labels, []string{"le", "+Inf"}), n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			f.name, labelString(e.labels, nil), formatFloat(sum),
			f.name, labelString(e.labels, nil), n); err != nil {
			return err
		}
		return nil
	}
	return fmt.Errorf("obs: unknown family type %q", f.typ)
}

// jsonExport is the machine-readable exposition: the same data as the
// Prometheus text, plus the scrape timestamp supplied by the caller.
type jsonExport struct {
	// TimestampMS is the scrape time in Unix milliseconds — the only place
	// wall time appears in the whole package (the exposition boundary).
	TimestampMS int64        `json:"ts_ms"`
	Families    []jsonFamily `json:"families"`
}

type jsonFamily struct {
	Name    string       `json:"name"`
	Type    string       `json:"type"`
	Help    string       `json:"help"`
	Metrics []jsonMetric `json:"metrics"`
}

type jsonMetric struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"` // counters and gauges
	Sum     *float64          `json:"sum,omitempty"`   // histograms
	Count   *uint64           `json:"count,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE         float64 `json:"le"`
	Cumulative uint64  `json:"cumulative"`
}

// WriteJSON writes the JSON exposition, stamped with the caller-supplied
// scrape time in Unix milliseconds. Passing the timestamp in (rather than
// reading the clock here) keeps the registry itself deterministic and lets
// the golden test fix the stamp. A nil registry writes an empty export.
func (r *Registry) WriteJSON(w io.Writer, unixMillis int64) error {
	out := jsonExport{TimestampMS: unixMillis, Families: []jsonFamily{}}
	for _, f := range r.sortedFamilies() {
		jf := jsonFamily{Name: f.name, Type: f.typ, Help: f.help, Metrics: []jsonMetric{}}
		for _, e := range f.members {
			jm := jsonMetric{Labels: labelMap(e.labels)}
			switch f.typ {
			case "counter":
				v := float64(e.c.Value())
				jm.Value = &v
			case "gauge":
				v := e.g.Value()
				jm.Value = &v
			case "histogram":
				counts, sum, n := e.h.snapshot()
				jm.Sum, jm.Count = &sum, &n
				cum := uint64(0)
				for i, bound := range f.bounds {
					cum += counts[i]
					jm.Buckets = append(jm.Buckets, jsonBucket{LE: bound, Cumulative: cum})
				}
			}
			jf.Metrics = append(jf.Metrics, jm)
		}
		out.Families = append(out.Families, jf)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// famSnap is a scrape-time snapshot of one family: the family descriptor
// plus a stable copy of its member list (both slice headers are guarded by
// the registry lock, so the copies are taken under it).
type famSnap struct {
	*family
	members []*metricEntry
}

// sortedFamilies snapshots every family (name-sorted) and its member list
// (label-signature-sorted) under the registry lock. Safe on a nil registry
// (returns nothing).
func (r *Registry) sortedFamilies() []famSnap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, famSnap{family: f, members: append([]*metricEntry(nil), f.metrics...)})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		ms := f.members
		sort.Slice(ms, func(i, j int) bool { return ms[i].key < ms[j].key })
	}
	return fams
}

// labelString renders {k1="v1",k2="v2"} (or "" when there are no labels).
// extra, if non-nil, is one additional trailing pair (the histogram "le").
func labelString(labels []string, extra []string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	all := append(append([]string(nil), labels...), extra...)
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes quotes, backslashes and newlines the Prometheus way.
		fmt.Fprintf(&b, "%s=%q", all[i], all[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// labelMap converts label pairs into a map for JSON rendering
// (encoding/json sorts object keys, keeping the output deterministic).
func labelMap(labels []string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		m[labels[i]] = labels[i+1]
	}
	return m
}

// formatFloat renders a float the shortest way that round-trips; integral
// values print without an exponent so counters-as-floats stay readable.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
