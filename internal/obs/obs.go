// Package obs is the observability layer of the on-the-fly testing
// platform: a stdlib-only metrics registry (counters, gauges, histograms
// with fixed deterministic bucket bounds), a ring-buffered event trace, and
// a Prometheus-text + JSON exposition endpoint served via net/http (see
// Handler and Serve).
//
// The design constraint that shapes the whole package is the repository's
// determinism contract: the monitored packages (core, hwblock, hwfast,
// faultinject) are bit-reproducible functions of their inputs and seeds,
// proven so by differential suites, and instrumenting them must not change
// that. Three rules follow:
//
//   - Instrumentation is nil-safe. A nil *Registry hands out nil *Counter,
//     *Gauge and *Histogram handles, and every handle method is a no-op on
//     a nil receiver — so the hot paths carry at most one pointer check per
//     update and the differential "instrumented vs nil registry" test can
//     prove byte-identical statistical output.
//   - No timestamps inside the registry. Counters, gauges, histograms and
//     trace events carry no wall-clock state; trace events are ordered by a
//     monotonic emission sequence number and an optional bit-stream
//     position. Wall time enters only at the exposition boundary (the JSON
//     endpoint stamps the scrape; see server.go).
//   - No map-order dependence. Exposition output is sorted by family name
//     and label signature, so two scrapes of the same state are
//     byte-identical — the property the exposition golden tests pin.
//
// Metric families follow the Prometheus data model: a family has a name, a
// help string and a type; its member metrics are distinguished by label
// key/value pairs. Handle lookups are idempotent — asking for the same
// (name, labels) again returns the same handle — so callers cache handles
// once at instrumentation time and pay only an atomic update per event.
//
//trnglint:deterministic
package obs

import (
	"fmt"
	"sync"
)

// DefaultTraceCapacity is the ring-buffer size of a registry's event trace
// when none is set explicitly.
const DefaultTraceCapacity = 4096

// Registry is a set of metric families plus one ring-buffered event trace.
// All methods are safe for concurrent use, and all methods are no-ops on a
// nil *Registry — instrumented code never needs to guard its calls.
type Registry struct {
	mu sync.Mutex
	// families holds insertion order; exposition sorts by name.
	//trnglint:guardedby mu
	families []*family
	// byName is lookup only — never ranged over.
	//trnglint:guardedby mu
	byName map[string]*family
	// trace is swapped wholesale by SetTraceCapacity, so even the pointer
	// read must hold mu; the *Trace itself is internally synchronized.
	//trnglint:guardedby mu
	trace *Trace
}

// family is one metric family: a name, help text, a type, and the member
// metrics keyed by their label signature.
type family struct {
	name    string
	help    string
	typ     string    // "counter", "gauge" or "histogram"
	bounds  []float64 // histogram families only
	metrics []*metricEntry
	byKey   map[string]*metricEntry
}

// metricEntry is one member of a family: its label pairs and exactly one
// live handle.
type metricEntry struct {
	labels []string // alternating key, value — insertion order preserved
	key    string   // serialized label signature, used for lookup and sorting
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry with a trace of
// DefaultTraceCapacity events.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]*family),
		trace:  NewTrace(DefaultTraceCapacity),
	}
}

// Counter returns the counter of the named family with the given label
// pairs (alternating key, value), registering family and member on first
// use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	e := r.metric(name, help, "counter", nil, labels)
	return e.c
}

// Gauge returns the gauge of the named family with the given label pairs,
// registering on first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.metric(name, help, "gauge", nil, labels)
	return e.g
}

// Histogram returns the histogram of the named family with the given label
// pairs, registering on first use. The bucket upper bounds must be sorted
// ascending and are fixed for the family — deterministic by construction,
// never derived from observed data. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	e := r.metric(name, help, "histogram", bounds, labels)
	return e.h
}

// metric finds or creates the member entry for (name, labels).
func (r *Registry) metric(name, help, typ string, bounds []float64, labels []string) *metricEntry {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: odd label list %q (want key, value pairs)", name, labels))
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ,
			bounds: append([]float64(nil), bounds...),
			byKey:  make(map[string]*metricEntry)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: family %q registered as %s, requested as %s", name, f.typ, typ))
	}
	e := f.byKey[key]
	if e == nil {
		e = &metricEntry{labels: append([]string(nil), labels...), key: key}
		switch typ {
		case "counter":
			e.c = &Counter{}
		case "gauge":
			e.g = &Gauge{}
		case "histogram":
			e.h = newHistogram(f.bounds)
		}
		f.byKey[key] = e
		f.metrics = append(f.metrics, e)
	}
	return e
}

// labelKey serializes label pairs into a lookup/sort key. 0x1f (unit
// separator) cannot appear in reasonable label data, so the key is
// injective.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	key := ""
	for _, s := range labels {
		key += s + "\x1f"
	}
	return key
}

// Families reports the number of registered metric families. It is 0 on a
// nil registry.
func (r *Registry) Families() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.families)
}

// Trace returns the registry's event trace, or nil on a nil registry (the
// nil *Trace is itself a no-op).
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// SetTraceCapacity replaces the trace with an empty one of the given
// capacity. It is intended for setup time, before events flow.
func (r *Registry) SetTraceCapacity(capacity int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace = NewTrace(capacity)
}

// Emit appends one event to the registry's trace and counts it in the
// obs_trace_events_total family. bit is the absolute bit-stream position
// the event refers to, or -1 when it has none. No-op on a nil registry.
func (r *Registry) Emit(kind string, bit int64, detail string) {
	if r == nil {
		return
	}
	r.Counter("obs_trace_events_total",
		"events appended to the ring-buffered trace, by kind", "kind", kind).Inc()
	// Fetch the trace pointer under mu (SetTraceCapacity may swap it), but
	// emit outside the lock — Trace has its own mutex and the append may
	// be contended.
	r.Trace().Emit(kind, bit, detail)
}
