package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestTraceRingWrap(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit("k", int64(i), fmt.Sprintf("event %d", i))
	}
	if tr.Len() != 4 {
		t.Errorf("Len() = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Errorf("Total() = %d, want 10", tr.Total())
	}
	ev := tr.Snapshot()
	if len(ev) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(ev))
	}
	// The last 4 of 10 emissions survive, oldest first, and Seq keeps the
	// lifetime index so the evicted count is recoverable.
	for i, e := range ev {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.Bit != int64(wantSeq) {
			t.Errorf("snapshot[%d] = %+v, want Seq=Bit=%d", i, e, wantSeq)
		}
	}
}

func TestTraceBelowCapacity(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit("a", 1, "")
	tr.Emit("b", 2, "")
	ev := tr.Snapshot()
	if len(ev) != 2 || ev[0].Kind != "a" || ev[1].Kind != "b" {
		t.Errorf("snapshot = %+v", ev)
	}
}

func TestTraceWriteJSONLines(t *testing.T) {
	tr := NewTrace(2)
	tr.Emit("x", 7, "payload")
	tr.Emit("y", -1, "")
	var b strings.Builder
	if err := tr.WriteJSONLines(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":0,"kind":"x","bit":7,"detail":"payload"}
{"seq":1,"kind":"y","bit":-1}
`
	if b.String() != want {
		t.Errorf("JSON lines:\ngot:  %swant: %s", b.String(), want)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Emit("k", 0, "")
	if tr.Len() != 0 || tr.Total() != 0 || tr.Snapshot() != nil {
		t.Error("nil trace reported state")
	}
	var b strings.Builder
	if err := tr.WriteJSONLines(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil trace wrote %q (err %v)", b.String(), err)
	}
}

func TestTraceCapacityFallback(t *testing.T) {
	if got := cap(NewTrace(0).buf); got != DefaultTraceCapacity {
		t.Errorf("NewTrace(0) capacity = %d, want %d", got, DefaultTraceCapacity)
	}
}
