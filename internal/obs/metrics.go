package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are no-ops on a nil receiver, so handles
// obtained from a nil *Registry cost one pointer check per update.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//trnglint:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter.
//
//trnglint:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value reads 0; all
// methods are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set replaces the gauge value.
//
//trnglint:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (negative deltas decrease it).
//
//trnglint:hotpath
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. The bucket upper
// bounds are set at registration and never change — deterministic by
// construction, so the same stream of observations always lands in the
// same cells regardless of arrival timing. All methods are no-ops on a nil
// receiver.
type Histogram struct {
	mu sync.Mutex
	// bounds is the ascending upper bounds; an implicit +Inf bucket
	// follows. Read-only after construction, so it needs no guard.
	bounds []float64
	// counts has len(bounds)+1 cells: counts[i] observes v <= bounds[i].
	//trnglint:guardedby mu
	counts []uint64
	//trnglint:guardedby mu
	sum float64
	//trnglint:guardedby mu
	n uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bucket bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// snapshot returns a consistent copy of the histogram state.
func (h *Histogram) snapshot() (counts []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.n
}

// Count returns the total number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Pow2Buckets returns the power-of-two upper bounds 2^lo .. 2^hi — the
// natural deterministic scale for instruction counts, bus reads and other
// integer costs whose dynamic range spans the paper's three sequence
// lengths.
func Pow2Buckets(lo, hi uint) []float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	out := make([]float64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, float64(uint64(1)<<e))
	}
	return out
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start, each factor times the previous — the conventional scale for
// wall-clock latencies observed at the CLI boundary.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+width, ... — for
// bounded quantities such as per-worker utilization fractions.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
