package obs

import (
	"strings"
	"testing"
)

// golden builds the registry every exposition test scrapes.
func golden() *Registry {
	reg := NewRegistry()
	reg.Counter("req_total", "requests served, by code", "code", "200").Add(3)
	reg.Counter("req_total", "requests served, by code", "code", "404").Inc()
	reg.Gauge("temp_celsius", "temperature").Set(36.6)
	h := reg.Histogram("size_bytes", "payload size", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	return reg
}

const goldenText = `# HELP req_total requests served, by code
# TYPE req_total counter
req_total{code="200"} 3
req_total{code="404"} 1
# HELP size_bytes payload size
# TYPE size_bytes histogram
size_bytes_bucket{le="1"} 1
size_bytes_bucket{le="2"} 1
size_bytes_bucket{le="4"} 2
size_bytes_bucket{le="+Inf"} 3
size_bytes_sum 104
size_bytes_count 3
# HELP temp_celsius temperature
# TYPE temp_celsius gauge
temp_celsius 36.6
`

func TestWritePrometheusGolden(t *testing.T) {
	reg := golden()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenText {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), goldenText)
	}
	// Two scrapes of identical state must be byte-identical: the format
	// sorts families and members, never ranging over a map.
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Error("second scrape differs from the first on unchanged state")
	}
}

const goldenJSON = `{"ts_ms":1234,"families":[` +
	`{"name":"req_total","type":"counter","help":"requests served, by code","metrics":[` +
	`{"labels":{"code":"200"},"value":3},{"labels":{"code":"404"},"value":1}]},` +
	`{"name":"size_bytes","type":"histogram","help":"payload size","metrics":[` +
	`{"sum":104,"count":3,"buckets":[{"le":1,"cumulative":1},{"le":2,"cumulative":1},{"le":4,"cumulative":2}]}]},` +
	`{"name":"temp_celsius","type":"gauge","help":"temperature","metrics":[{"value":36.6}]}]}` + "\n"

func TestWriteJSONGolden(t *testing.T) {
	reg := golden()
	var b strings.Builder
	if err := reg.WriteJSON(&b, 1234); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenJSON {
		t.Errorf("JSON exposition mismatch:\ngot:  %swant: %s", b.String(), goldenJSON)
	}
}

func TestHandleIdempotence(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total", "x", "k", "v")
	c2 := reg.Counter("x_total", "x", "k", "v")
	if c1 != c2 {
		t.Error("same (name, labels) returned distinct counter handles")
	}
	if c3 := reg.Counter("x_total", "x", "k", "w"); c3 == c1 {
		t.Error("different labels returned the same handle")
	}
	if got := reg.Families(); got != 1 {
		t.Errorf("Families() = %d, want 1 (two members of one family)", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter family as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestOddLabelsPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("odd label list did not panic")
		}
	}()
	reg.Counter("x_total", "x", "key-without-value")
}

func TestBadBoundsPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("non-ascending histogram bounds did not panic")
		}
	}()
	reg.Histogram("h", "h", []float64{1, 1})
}

// TestNilRegistryIsNoOp exercises the entire nil surface the hot paths
// rely on: a nil registry hands out nil handles and every call is safe.
func TestNilRegistryIsNoOp(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a_total", "a", "k", "v")
	g := reg.Gauge("b", "b")
	h := reg.Histogram("c", "c", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(-1)
	h.Observe(3)
	reg.Emit("kind", 0, "detail")
	reg.SetTraceCapacity(8)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles reported non-zero state")
	}
	if reg.Families() != 0 || reg.Trace() != nil {
		t.Error("nil registry reported registered state")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry text exposition: err=%v, wrote %q", err, b.String())
	}
	b.Reset()
	if err := reg.WriteJSON(&b, 0); err != nil {
		t.Fatal(err)
	}
	if b.String() != "{\"ts_ms\":0,\"families\":[]}\n" {
		t.Errorf("nil registry JSON exposition = %q", b.String())
	}
}

func TestEmitCountsAndTraces(t *testing.T) {
	reg := NewRegistry()
	reg.Emit("fault.test", 42, "first")
	reg.Emit("fault.test", 43, "second")
	reg.Emit("supervisor.failover", -1, "")
	if got := reg.Counter("obs_trace_events_total", "", "kind", "fault.test").Value(); got != 2 {
		t.Errorf("fault.test event count = %d, want 2", got)
	}
	ev := reg.Trace().Snapshot()
	if len(ev) != 3 || ev[0].Kind != "fault.test" || ev[0].Bit != 42 || ev[2].Seq != 2 {
		t.Errorf("trace snapshot = %+v", ev)
	}
}

func TestGaugeAdd(t *testing.T) {
	g := NewRegistry().Gauge("g", "g")
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge after Set(10), Add(-2.5) = %v, want 7.5", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := Pow2Buckets(2, 4); len(got) != 3 || got[0] != 4 || got[2] != 16 {
		t.Errorf("Pow2Buckets(2,4) = %v", got)
	}
	if got := Pow2Buckets(4, 2); len(got) != 3 || got[0] != 4 {
		t.Errorf("Pow2Buckets swaps inverted bounds: %v", got)
	}
	if got := ExpBuckets(1, 10, 3); got[0] != 1 || got[1] != 10 || got[2] != 100 {
		t.Errorf("ExpBuckets(1,10,3) = %v", got)
	}
	if got := LinearBuckets(0.5, 0.25, 3); got[0] != 0.5 || got[2] != 1.0 {
		t.Errorf("LinearBuckets(0.5,0.25,3) = %v", got)
	}
}
