package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the exposition mux for a registry:
//
//	/metrics        Prometheus text format (version 0.0.4)
//	/metrics.json   JSON exposition, stamped with the scrape time
//	/trace          the ring-buffered event trace, one JSON object per line
//	/debug/pprof/   the standard net/http/pprof profiles, so a long soak
//	                run of cmd/otftest can be CPU/heap-profiled live
//
// Every scrape is itself counted (obs_scrapes_total by endpoint) — the
// observability layer reports through itself.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	scrapes := func(endpoint string) *Counter {
		return r.Counter("obs_scrapes_total",
			"exposition scrapes served, by endpoint", "endpoint", endpoint)
	}
	promScrapes := scrapes("metrics")
	jsonScrapes := scrapes("metrics.json")
	traceScrapes := scrapes("trace")

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		promScrapes.Inc()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		jsonScrapes.Inc()
		w.Header().Set("Content-Type", "application/json")
		// The one wall-clock read of the package: the scrape stamp. The
		// registry itself stays deterministic; time exists only here, at
		// the exposition boundary.
		//trnglint:allow determinism the JSON exposition stamps the scrape time; no metric or trace state depends on it
		ts := time.Now().UnixMilli()
		if err := r.WriteJSON(w, ts); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		traceScrapes.Inc()
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := r.Trace().WriteJSONLines(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the exposition handler on addr (e.g. ":9600", or
// "127.0.0.1:0" to pick a free port) and returns the running server and
// the bound address. The server runs on its own goroutine until Close; the
// caller typically lets process exit tear it down.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: Handler(r)}
	//trnglint:detached the exposition server lives until srv.Close; Serve returns when the listener dies, so there is nothing to join
	go func() {
		// ErrServerClosed on shutdown is the expected exit; any other
		// serve error has nowhere meaningful to go once the listener is
		// up, and must not take the monitored process down with it.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr().String(), nil
}
