package area

import (
	"fmt"

	"repro/internal/hwblock"
	"repro/internal/hwsim"
)

// Ablation quantifies one of the paper's §III-C area tricks by building the
// design *without* it and measuring the growth.
type Ablation struct {
	// Trick names the sharing technique being ablated.
	Trick string
	// Description says what the design carries instead.
	Description string
	// BaseSlices is the unified design's footprint.
	BaseSlices int
	// AblatedSlices is the footprint without the trick.
	AblatedSlices int
	// DeltaSlices = AblatedSlices − BaseSlices: what the trick saves.
	DeltaSlices int
}

// Ablations measures all four tricks on the given design. Each ablation
// instantiates a fresh unified block and adds the hardware the trick
// eliminates, then re-runs the area estimator.
func Ablations(cfg hwblock.Config) ([]Ablation, error) {
	base, err := hwblock.New(cfg)
	if err != nil {
		return nil, err
	}
	baseSlices := hwsim.EstimateFPGA(base.Netlist()).Slices
	n := uint64(cfg.N)
	var out []Ablation

	add := func(trick, desc string, build func(nl *hwsim.Netlist) error) error {
		b, err := hwblock.New(cfg)
		if err != nil {
			return err
		}
		if err := build(b.Netlist()); err != nil {
			return err
		}
		slices := hwsim.EstimateFPGA(b.Netlist()).Slices
		out = append(out, Ablation{
			Trick:         trick,
			Description:   desc,
			BaseSlices:    baseSlices,
			AblatedSlices: slices,
			DeltaSlices:   slices - baseSlices,
		})
		return nil
	}

	// Trick 1: omitting the redundant ones counter (tests 1 and 3 derive
	// N_ones from the cusum counter's final value).
	if err := add("omit-ones-counter",
		"dedicated N_ones counter for tests 1 and 3",
		func(nl *hwsim.Netlist) error {
			hwsim.NewCounter(nl, "ablate_ones", n)
			return nil
		}); err != nil {
		return nil, err
	}

	// Trick 2: block detection from the global bit counter (tests 2, 4,
	// 7, 8 would otherwise each carry a block-length counter).
	if err := add("block-detection",
		"per-test block boundary counters instead of global-counter bits",
		func(nl *hwsim.Netlist) error {
			p := cfg.Params
			if cfg.Has(2) {
				hwsim.NewCounter(nl, "ablate_blk2", uint64(p.BlockFrequencyM))
			}
			if cfg.Has(4) {
				hwsim.NewCounter(nl, "ablate_blk4", uint64(p.LongestRunM))
			}
			if cfg.Has(7) {
				hwsim.NewCounter(nl, "ablate_blk7", uint64(cfg.N/p.NonOverlappingN))
			}
			if cfg.Has(8) {
				hwsim.NewCounter(nl, "ablate_blk8", uint64(p.OverlappingM))
			}
			return nil
		}); err != nil {
		return nil, err
	}

	// Trick 3: unified serial/ApEn implementation (test 12 would
	// otherwise duplicate the m- and (m−1)-bit pattern banks).
	if cfg.Has(11) && cfg.Has(12) {
		if err := add("unified-apen",
			"duplicated pattern-counter banks for the approximate-entropy test",
			func(nl *hwsim.Netlist) error {
				m := cfg.Params.SerialM
				hwsim.NewCounterBank(nl, "ablate_nu_m", 1<<uint(m), n)
				hwsim.NewCounterBank(nl, "ablate_nu_m1", 1<<uint(m-1), n)
				return nil
			}); err != nil {
			return nil, err
		}
	}

	// Trick 4: the shared pattern shift register (tests 7, 8, 11, 12
	// would otherwise each carry their own).
	consumers := 0
	for _, id := range []int{7, 8, 11} {
		if cfg.Has(id) {
			consumers++
		}
	}
	if consumers > 1 {
		if err := add("shared-shift-register",
			"one pattern shift register per consuming test",
			func(nl *hwsim.Netlist) error {
				if cfg.Has(7) {
					hwsim.NewShiftReg(nl, "ablate_sr7", cfg.Params.TemplateM)
				}
				if cfg.Has(8) {
					hwsim.NewShiftReg(nl, "ablate_sr8", cfg.Params.TemplateM)
				}
				// The shared register already serves one consumer; only
				// the extras count, so drop one of the additions when
				// the serial test is also present.
				if cfg.Has(11) && !cfg.Has(7) && !cfg.Has(8) {
					return fmt.Errorf("area: unreachable shift-register ablation")
				}
				return nil
			}); err != nil {
			return nil, err
		}
	}

	// Sanity: every ablation must cost area, never save it.
	for _, a := range out {
		if a.DeltaSlices < 0 {
			return nil, fmt.Errorf("area: ablation %q saved %d slices — model inconsistency", a.Trick, -a.DeltaSlices)
		}
	}
	return out, nil
}
