// Package area builds the comparison baseline of the paper's Table IV: an
// *individual*, all-hardware implementation of each test in the style of
// prior work ([13] Veljković et al., DATE 2012), where "each test was
// implemented individually and none of the hardware resources were
// shared", and the test's decision logic (accumulation, squaring,
// comparison against the critical value, alarm flag) lives in hardware too.
//
// Comparing the summed footprint of these individual blocks against the
// unified HW/SW design of internal/hwblock reproduces the paper's ~20 %
// slice saving and exposes where it comes from: the shared up/down counter
// (no per-test ones counter), the shared global bit counter (no per-test
// block counters), the shared shift register, and the removal of all
// decision arithmetic from hardware.
package area

import (
	"fmt"

	"repro/internal/hwblock"
	"repro/internal/hwsim"
	"repro/internal/nist"
)

// IndividualBlock is the structural model of one stand-alone test
// implementation.
type IndividualBlock struct {
	// TestID is the SP800-22 test number.
	TestID int
	// Netlist is the structural inventory.
	Netlist *hwsim.Netlist
}

// decisionUnit adds the in-hardware decision logic an individual
// implementation needs: an accumulator, a squarer when the statistic is a
// sum of squares, a comparator against the stored critical value and the
// alarm flag.
func decisionUnit(nl *hwsim.Netlist, name string, statBits int, needsSquarer bool) {
	hwsim.NewRegister(nl, name+"_acc", uint64(1)<<uint(statBits)-1)
	if needsSquarer {
		// A combinational w×w squarer costs roughly w²/6 LUT6s (array
		// multiplier with both operands equal).
		sq := &squarer{name: name + "_sqr", width: statBits}
		nl.AddPrimitive(sq)
	}
	hwsim.NewEqComparator(nl, name+"_crit", statBits)
	hwsim.NewRegister(nl, name+"_alarm", 1)
}

// squarer is a purely structural combinational squaring unit.
type squarer struct {
	name  string
	width int
}

// PrimName implements hwsim.Primitive.
func (s *squarer) PrimName() string { return fmt.Sprintf("squarer %s[%d]", s.name, s.width) }

// Resources implements hwsim.Primitive.
func (s *squarer) Resources() hwsim.Resources {
	return hwsim.Resources{LUTs: s.width * s.width / 6}
}

// Reset implements hwsim.Primitive.
func (s *squarer) Reset() {}

// BuildIndividual constructs the stand-alone implementation of one test for
// sequence length n with the given parameters. Supported tests are the
// nine HW-suitable ones.
func BuildIndividual(testID, n int, p nist.Params) (*IndividualBlock, error) {
	nl := hwsim.NewNetlist(fmt.Sprintf("individual-test%d-n%d", testID, n))
	nBits := widthOf(uint64(n))
	switch testID {
	case 1:
		hwsim.NewCounter(nl, "global", uint64(n))
		hwsim.NewCounter(nl, "ones", uint64(n))
		decisionUnit(nl, "t1", nBits, false)
	case 2:
		hwsim.NewCounter(nl, "global", uint64(n))
		hwsim.NewCounter(nl, "eps", uint64(p.BlockFrequencyM))
		// The all-hardware version accumulates Σ(ε−M/2)² on the fly.
		decisionUnit(nl, "t2", nBits+widthOf(uint64(p.BlockFrequencyM)), true)
	case 3:
		hwsim.NewCounter(nl, "global", uint64(n))
		hwsim.NewCounter(nl, "ones", uint64(n)) // needed for the interval select
		hwsim.NewCounter(nl, "runs", uint64(n))
		hwsim.NewRegister(nl, "prev", 1)
		decisionUnit(nl, "t3", nBits, false)
	case 4:
		hwsim.NewCounter(nl, "global", uint64(n))
		lo, hi, err := nist.LongestRunClassBounds(p.LongestRunM)
		if err != nil {
			return nil, err
		}
		hwsim.NewCounter(nl, "run", uint64(hi))
		hwsim.NewMaxTracker(nl, "blkmax", uint64(hi))
		hwsim.NewCounterBank(nl, "classes", hi-lo+1, uint64(n/p.LongestRunM))
		decisionUnit(nl, "t4", nBits+8, true)
	case 7:
		hwsim.NewCounter(nl, "global", uint64(n))
		hwsim.NewShiftReg(nl, "pattern", p.TemplateM)
		hwsim.NewEqComparator(nl, "tpl", p.TemplateM)
		blockLen := n / p.NonOverlappingN
		hwsim.NewCounter(nl, "w", uint64(blockLen/p.TemplateM+1))
		hwsim.NewCounter(nl, "hold", uint64(p.TemplateM))
		decisionUnit(nl, "t7", nBits+4, true)
	case 8:
		hwsim.NewCounter(nl, "global", uint64(n))
		hwsim.NewShiftReg(nl, "pattern", p.TemplateM)
		hwsim.NewEqComparator(nl, "tpl", p.TemplateM)
		hwsim.NewCounter(nl, "occ", 5)
		hwsim.NewCounterBank(nl, "classes", 6, uint64(n/p.OverlappingM))
		decisionUnit(nl, "t8", nBits+8, true)
	case 11:
		hwsim.NewCounter(nl, "global", uint64(n))
		hwsim.NewShiftReg(nl, "pattern", p.SerialM)
		for _, w := range []int{p.SerialM, p.SerialM - 1, p.SerialM - 2} {
			hwsim.NewCounterBank(nl, fmt.Sprintf("nu%d", w), 1<<uint(w), uint64(n))
		}
		decisionUnit(nl, "t11", 2*nBits+4, true)
	case 12:
		hwsim.NewCounter(nl, "global", uint64(n))
		hwsim.NewShiftReg(nl, "pattern", p.SerialM)
		// Without sharing, the ApEn test duplicates the pattern banks.
		for _, w := range []int{p.SerialM, p.SerialM - 1} {
			hwsim.NewCounterBank(nl, fmt.Sprintf("nu%d", w), 1<<uint(w), uint64(n))
		}
		// The x·log(x) evaluation in hardware: PWL ROM + multiplier.
		hwsim.NewCounterBank(nl, "pwl_rom", 32, 1<<16-1) // 32 Q16 entries
		decisionUnit(nl, "t12", 2*nBits, true)
	case 13:
		hwsim.NewCounter(nl, "global", uint64(n))
		hwsim.NewUpDownCounter(nl, "walk", uint64(n))
		hwsim.NewMinMaxTracker(nl, "ext", uint64(n))
		decisionUnit(nl, "t13", nBits+1, false)
	default:
		return nil, fmt.Errorf("area: test %d has no hardware implementation", testID)
	}
	return &IndividualBlock{TestID: testID, Netlist: nl}, nil
}

func widthOf(max uint64) int {
	w := 1
	for max>>uint(w) != 0 {
		w++
	}
	return w
}

// Comparison is the Table IV contrast for one design point.
type Comparison struct {
	// N is the sequence length.
	N int
	// Tests are the test numbers compared.
	Tests []int
	// IndividualSlices is the summed slice count of the stand-alone
	// implementations.
	IndividualSlices int
	// UnifiedSlices is the unified HW/SW design's slice count.
	UnifiedSlices int
	// Saving is the fractional slice saving of the unified design.
	Saving float64
}

// Compare builds the individual implementation of every test in the
// unified design cfg and contrasts the total footprint.
func Compare(cfg hwblock.Config) (*Comparison, error) {
	b, err := hwblock.New(cfg)
	if err != nil {
		return nil, err
	}
	unified := hwsim.EstimateFPGA(b.Netlist()).Slices
	total := 0
	for _, id := range cfg.Tests {
		if id == 12 && cfg.Has(11) {
			// Even in the individual world, prior work implements the
			// ApEn test only where it exists at all; the paper's
			// comparison covers tests 1,2,3,4,7,13.
		}
		ib, err := BuildIndividual(id, cfg.N, cfg.Params)
		if err != nil {
			return nil, err
		}
		total += hwsim.EstimateFPGA(ib.Netlist).Slices
	}
	return &Comparison{
		N:                cfg.N,
		Tests:            cfg.Tests,
		IndividualSlices: total,
		UnifiedSlices:    unified,
		Saving:           1 - float64(unified)/float64(total),
	}, nil
}
