package area

import (
	"testing"

	"repro/internal/hwblock"
	"repro/internal/hwsim"
	"repro/internal/nist"
)

func TestBuildIndividualAllSuitableTests(t *testing.T) {
	p := nist.RecommendedParams(65536)
	for _, id := range []int{1, 2, 3, 4, 7, 8, 11, 12, 13} {
		ib, err := BuildIndividual(id, 65536, p)
		if err != nil {
			t.Fatalf("test %d: %v", id, err)
		}
		est := hwsim.EstimateFPGA(ib.Netlist)
		if est.Slices <= 0 || est.FFs <= 0 {
			t.Errorf("test %d: empty netlist (%+v)", id, est)
		}
	}
}

func TestBuildIndividualRejectsUnsuitable(t *testing.T) {
	p := nist.RecommendedParams(65536)
	for _, id := range []int{5, 6, 9, 10, 14, 15} {
		if _, err := BuildIndividual(id, 65536, p); err == nil {
			t.Errorf("test %d accepted (marked No in Table I)", id)
		}
	}
}

func TestUnifiedSavesSlices(t *testing.T) {
	// The paper's Table IV: the unified implementation uses ~20 % fewer
	// slices than the sum of individual implementations ([13] reports
	// 256 vs the unified 168 at n=65536).
	cfg, err := hwblock.NewConfig(65536, hwblock.Medium)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("individual %d slices vs unified %d slices (saving %.0f%%)",
		cmp.IndividualSlices, cmp.UnifiedSlices, 100*cmp.Saving)
	if cmp.UnifiedSlices >= cmp.IndividualSlices {
		t.Errorf("unified design (%d slices) not smaller than individual sum (%d)",
			cmp.UnifiedSlices, cmp.IndividualSlices)
	}
	if cmp.Saving < 0.10 {
		t.Errorf("saving %.1f%% below the paper's ~20%% band", 100*cmp.Saving)
	}
}

func TestSavingsHoldAcrossVariants(t *testing.T) {
	for _, cfg := range hwblock.AllConfigs() {
		cmp, err := Compare(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if cmp.Saving <= 0 {
			t.Errorf("%s: unified design larger than individual sum (%d vs %d)",
				cfg.Name, cmp.UnifiedSlices, cmp.IndividualSlices)
		}
	}
}

func TestIndividualDuplicatesSharedResources(t *testing.T) {
	// Each individual block carries its own global bit counter; the
	// unified design has exactly one. Verify the structural story behind
	// the saving: summed FFs of individual blocks exceed the unified FFs.
	cfg, err := hwblock.NewConfig(65536, hwblock.Medium)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unifiedFF := b.Netlist().Total().FFs
	sumFF := 0
	for _, id := range cfg.Tests {
		ib, err := BuildIndividual(id, cfg.N, cfg.Params)
		if err != nil {
			t.Fatal(err)
		}
		sumFF += ib.Netlist.Total().FFs
	}
	if sumFF <= unifiedFF {
		t.Errorf("individual FFs %d not larger than unified %d", sumFF, unifiedFF)
	}
}
