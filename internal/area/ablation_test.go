package area

import (
	"testing"

	"repro/internal/hwblock"
)

func TestAblationsHighVariant(t *testing.T) {
	cfg, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		t.Fatal(err)
	}
	abls, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(abls) != 4 {
		t.Fatalf("got %d ablations, want 4 on the high variant", len(abls))
	}
	names := map[string]bool{}
	for _, a := range abls {
		names[a.Trick] = true
		if a.DeltaSlices < 0 {
			t.Errorf("%s: negative saving %d", a.Trick, a.DeltaSlices)
		}
		if a.AblatedSlices != a.BaseSlices+a.DeltaSlices {
			t.Errorf("%s: inconsistent accounting", a.Trick)
		}
		t.Logf("%-24s +%d slices without it (%d -> %d)", a.Trick, a.DeltaSlices, a.BaseSlices, a.AblatedSlices)
	}
	for _, want := range []string{"omit-ones-counter", "block-detection", "unified-apen", "shared-shift-register"} {
		if !names[want] {
			t.Errorf("missing ablation %q", want)
		}
	}
}

func TestAblationsUnifiedApEnIsTheBigWin(t *testing.T) {
	// Duplicating the pattern banks is by far the most expensive
	// alternative — the paper's unified-implementation trick carries the
	// largest share of the saving.
	cfg, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		t.Fatal(err)
	}
	abls, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var apen, rest int
	for _, a := range abls {
		if a.Trick == "unified-apen" {
			apen = a.DeltaSlices
		} else if a.DeltaSlices > rest {
			rest = a.DeltaSlices
		}
	}
	if apen <= rest {
		t.Errorf("unified-apen saves %d slices, not dominant over %d", apen, rest)
	}
}

func TestAblationsLightVariant(t *testing.T) {
	// The light variant has no template or serial tests: only the first
	// two tricks apply.
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	abls, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(abls) != 2 {
		t.Fatalf("got %d ablations, want 2 on the light variant", len(abls))
	}
}
