package sweval

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/hwblock"
	"repro/internal/nist"
	"repro/internal/trng"
)

func mustConfig(t *testing.T, n int, v hwblock.Variant) hwblock.Config {
	t.Helper()
	cfg, err := hwblock.NewConfig(n, v)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func runBlock(t *testing.T, cfg hwblock.Config, s *bitstream.Sequence) *hwblock.Block {
	t.Helper()
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(bitstream.NewReader(s)); err != nil {
		t.Fatal(err)
	}
	return b
}

func evaluate(t *testing.T, cfg hwblock.Config, s *bitstream.Sequence, alpha float64, opts ...Option) *Report {
	t.Helper()
	cv, err := NewCriticalValues(cfg, alpha, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewEvaluator(cv).Evaluate(runBlock(t, cfg, s))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// referenceDecision runs the reference suite test matching id on s with the
// platform parameters and returns (pass, minP).
func referenceDecision(t *testing.T, id int, s *bitstream.Sequence, p nist.Params, alpha float64) (bool, float64) {
	t.Helper()
	var r *nist.Result
	var err error
	switch id {
	case 1:
		r, err = nist.Frequency(s)
	case 2:
		r, err = nist.BlockFrequency(s, p.BlockFrequencyM)
	case 3:
		r, err = nist.Runs(s)
	case 4:
		r, err = nist.LongestRunOfOnes(s, p.LongestRunM)
	case 7:
		r, err = nist.NonOverlappingTemplate(s, p.TemplateB, p.TemplateM, p.NonOverlappingN)
	case 8:
		r, err = nist.OverlappingTemplate(s, p.TemplateM, p.OverlappingM)
	case 11:
		r, err = nist.Serial(s, p.SerialM)
	case 12:
		r, err = nist.ApproximateEntropy(s, p.SerialM-1)
	case 13:
		r, err = nist.CumulativeSums(s)
	default:
		t.Fatalf("no reference for test %d", id)
	}
	if err != nil {
		t.Fatalf("reference test %d: %v", id, err)
	}
	return r.Pass(alpha), r.MinP()
}

// TestDecisionEquivalence is the central validation of the paper's split:
// for random sequences, the decision produced from the hardware counters by
// the integer software routine equals the reference suite's decision at the
// same alpha — except within a narrow band around the critical value, where
// fixed-point quantization may legitimately differ (and for test 12, whose
// PWL approximation is only compared away from the boundary).
func TestDecisionEquivalence(t *testing.T) {
	const alpha = 0.01
	cfg := mustConfig(t, 65536, hwblock.High)
	mismatches := 0
	for seed := int64(0); seed < 12; seed++ {
		s := trng.Read(trng.NewIdeal(seed), cfg.N)
		rep := evaluate(t, cfg, s, alpha, WithRunsMethod(RunsExact))
		for _, v := range rep.Verdicts {
			refPass, minP := referenceDecision(t, v.TestID, s, cfg.Params, alpha)
			nearBoundary := minP > alpha/2 && minP < alpha*2
			if v.TestID == 12 && minP > alpha/5 && minP < 0.2 {
				// PWL tolerance band for the approximate entropy test.
				continue
			}
			if v.Pass != refPass && !nearBoundary {
				t.Errorf("seed %d test %d: embedded=%v reference=%v (minP=%.4g)",
					seed, v.TestID, v.Pass, refPass, minP)
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		t.Logf("%d decision mismatches", mismatches)
	}
}

func TestDecisionEquivalenceSmallDesign(t *testing.T) {
	const alpha = 0.01
	cfg := mustConfig(t, 128, hwblock.Medium)
	for seed := int64(100); seed < 140; seed++ {
		s := trng.Read(trng.NewIdeal(seed), cfg.N)
		rep := evaluate(t, cfg, s, alpha, WithRunsMethod(RunsExact))
		for _, v := range rep.Verdicts {
			refPass, minP := referenceDecision(t, v.TestID, s, cfg.Params, alpha)
			nearBoundary := minP > alpha/2 && minP < alpha*2
			if v.TestID == 12 {
				// At n=128 the pattern frequencies are coarse; allow the
				// PWL band to be wider.
				if minP > alpha/10 && minP < 0.5 {
					continue
				}
			}
			if v.Pass != refPass && !nearBoundary {
				t.Errorf("seed %d test %d: embedded=%v reference=%v (minP=%.4g)",
					seed, v.TestID, v.Pass, refPass, minP)
			}
		}
	}
}

func TestIdealSourcePassesAllVariants(t *testing.T) {
	// At alpha = 0.001 a single ideal sequence should essentially always
	// pass every implemented test.
	for _, cfg := range hwblock.AllConfigs() {
		if cfg.N > 65536 && testing.Short() {
			continue
		}
		s := trng.Read(trng.NewIdeal(7), cfg.N)
		rep := evaluate(t, cfg, s, 0.001)
		if !rep.Pass() {
			t.Errorf("%s: ideal source failed tests %v", cfg.Name, rep.Failed())
		}
	}
}

func TestStuckSourceFailsEverythingQuickly(t *testing.T) {
	cfg := mustConfig(t, 128, hwblock.Light)
	s := trng.Read(trng.NewStuckAt(1), cfg.N)
	rep := evaluate(t, cfg, s, 0.01)
	// Total failure: tests 1, 3, 13 must reject (2 and 4 also see maximal
	// defect).
	for _, want := range []int{1, 3, 13} {
		found := false
		for _, id := range rep.Failed() {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("stuck source: test %d did not fail (failed: %v)", want, rep.Failed())
		}
	}
}

func TestBiasedSourceFailsMonobit(t *testing.T) {
	cfg := mustConfig(t, 65536, hwblock.Light)
	s := trng.Read(trng.NewBiased(0.53, 3), cfg.N)
	rep := evaluate(t, cfg, s, 0.01)
	if rep.Pass() {
		t.Error("3% bias escaped the light variant at n=65536")
	}
}

func TestMarkovSourceFailsRunsAndSerial(t *testing.T) {
	cfg := mustConfig(t, 65536, hwblock.High)
	s := trng.Read(trng.NewMarkov(0.6, 4), cfg.N)
	rep := evaluate(t, cfg, s, 0.01)
	failed := map[int]bool{}
	for _, id := range rep.Failed() {
		failed[id] = true
	}
	if !failed[3] {
		t.Error("runs test passed a sticky Markov source")
	}
	if !failed[11] {
		t.Error("serial test passed a sticky Markov source")
	}
}

func TestLockedOscillatorDetected(t *testing.T) {
	cfg := mustConfig(t, 65536, hwblock.High)
	ro := trng.NewRingOscillator(100.37, 0.5, 5)
	ro.Lock(0.001)
	s := trng.Read(ro, cfg.N)
	rep := evaluate(t, cfg, s, 0.01)
	if rep.Pass() {
		t.Error("frequency-injection lock escaped the high variant")
	}
}

func TestRunsTableAgreesWithExactAwayFromEdges(t *testing.T) {
	cfg := mustConfig(t, 65536, hwblock.Light)
	disagreements := 0
	for seed := int64(0); seed < 30; seed++ {
		s := trng.Read(trng.NewIdeal(seed), cfg.N)
		b := runBlock(t, cfg, s)
		cvE, err := NewCriticalValues(cfg, 0.01, WithRunsMethod(RunsExact))
		if err != nil {
			t.Fatal(err)
		}
		cvT, err := NewCriticalValues(cfg, 0.01, WithRunsMethod(RunsTable))
		if err != nil {
			t.Fatal(err)
		}
		repE, err := NewEvaluator(cvE).Evaluate(b)
		if err != nil {
			t.Fatal(err)
		}
		repT, err := NewEvaluator(cvT).Evaluate(b)
		if err != nil {
			t.Fatal(err)
		}
		var passE, passT bool
		for _, v := range repE.Verdicts {
			if v.TestID == 3 {
				passE = v.Pass
			}
		}
		for _, v := range repT.Verdicts {
			if v.TestID == 3 {
				passT = v.Pass
			}
		}
		if passE != passT {
			disagreements++
		}
	}
	if disagreements > 3 {
		t.Errorf("table and exact runs methods disagreed on %d/30 ideal sequences", disagreements)
	}
}

func TestRunsTableStillCatchesDefects(t *testing.T) {
	cfg := mustConfig(t, 65536, hwblock.Light)
	s := trng.Read(trng.NewMarkov(0.6, 9), cfg.N)
	rep := evaluate(t, cfg, s, 0.01, WithRunsMethod(RunsTable))
	failed := false
	for _, v := range rep.Verdicts {
		if v.TestID == 3 && !v.Pass {
			failed = true
		}
	}
	if !failed {
		t.Error("table-method runs test passed a sticky Markov source")
	}
}

func TestPWLErrorBelowThreePercent(t *testing.T) {
	// The paper's Fig. 3 claim: the 32-segment PWL approximation of
	// x·log(x) is "almost indistinguishable" with < 3 % error. The
	// relative error is measured over the plotted working range (away
	// from the zero crossing at x→0 where relative error is undefined).
	tbl := NewXLogXTable()
	if rel := tbl.MaxRelativeError(1.0/32, 10000); rel >= 0.03 {
		t.Errorf("max relative error %.4f, want < 0.03", rel)
	}
	if abs := tbl.MaxAbsoluteError(10000); abs >= 0.013 {
		t.Errorf("max absolute error %.4f unexpectedly large", abs)
	}
}

func TestPWLExactAtSegmentBoundaries(t *testing.T) {
	tbl := NewXLogXTable()
	for i := 1; i <= PWLSegments; i++ {
		x := float64(i) / PWLSegments
		want := x * math.Log(x)
		if got := tbl.EvalFloat(x); math.Abs(got-want) > 2.0/pwlScale*2 {
			t.Errorf("PWL(%g) = %.6f, want %.6f (boundary should be exact up to Q16 rounding)", x, got, want)
		}
	}
}

func TestPWLSeriesShape(t *testing.T) {
	tbl := NewXLogXTable()
	xs, approx, exact := tbl.Series(100)
	if len(xs) != 101 || len(approx) != 101 || len(exact) != 101 {
		t.Fatal("series lengths wrong")
	}
	// x·ln(x) has its minimum at x = 1/e ≈ 0.368, value −1/e ≈ −0.368.
	minIdx := 0
	for i, v := range approx {
		if v < approx[minIdx] {
			minIdx = i
		}
	}
	if math.Abs(xs[minIdx]-1/math.E) > 0.05 {
		t.Errorf("PWL minimum at x=%.3f, want ≈ 0.368", xs[minIdx])
	}
}

func TestApEnLUTCountMatchesPaper(t *testing.T) {
	// Table III reports LUT = 24 exactly for every design containing the
	// approximate-entropy test: 8 (3-bit) + 16 (4-bit) PWL evaluations.
	cfg := mustConfig(t, 128, hwblock.Medium)
	s := trng.Read(trng.NewIdeal(11), cfg.N)
	rep := evaluate(t, cfg, s, 0.01)
	if got := rep.PerTest[12].Get(OpLUT); got != 24 {
		t.Errorf("ApEn LUT accesses = %d, want 24 (paper Table III)", got)
	}
	// Designs without test 12 must not touch the LUT.
	cfgL := mustConfig(t, 128, hwblock.Light)
	repL := evaluate(t, cfgL, trng.Read(trng.NewIdeal(11), cfgL.N), 0.01)
	if got := repL.Cost.Get(OpLUT); got != 0 {
		t.Errorf("light design used %d LUT accesses, want 0", got)
	}
}

func TestReadCountEqualsRegisterWords(t *testing.T) {
	// Every exposed word is read once per evaluation pass (the READ row
	// of Table III counts bus transactions) — except the serial pattern
	// counters of widths m and m−1, which both the serial and the
	// approximate-entropy routines read (the shared-counter trick shares
	// hardware, not bus transactions).
	for _, cfg := range hwblock.AllConfigs() {
		if cfg.N > 65536 {
			continue
		}
		s := trng.Read(trng.NewIdeal(13), cfg.N)
		b := runBlock(t, cfg, s)
		rep := evaluate(t, cfg, s, 0.01)
		// The GLOBAL_BITS entry is infrastructure the routine never reads.
		g, _ := b.RegFile().Lookup("GLOBAL_BITS")
		want := b.RegFile().Words() - g.Words
		if cfg.Has(11) && cfg.Has(12) {
			sm := cfg.Params.SerialM
			for _, e := range b.RegFile().EntriesForTest(11) {
				var w int
				if _, err := fmt.Sscanf(e.Name, "SERIAL_NU%d_", &w); err == nil && (w == sm || w == sm-1) {
					want += e.Words
				}
			}
		}
		if got := rep.Cost.Get(OpRead); got != want {
			t.Errorf("%s: READ = %d, want %d", cfg.Name, got, want)
		}
	}
}

func TestCostGrowsWithVariant(t *testing.T) {
	var prev int
	for _, v := range []hwblock.Variant{hwblock.Light, hwblock.Medium, hwblock.High} {
		cfg := mustConfig(t, 65536, v)
		s := trng.Read(trng.NewIdeal(17), cfg.N)
		rep := evaluate(t, cfg, s, 0.01)
		total := rep.Cost.Total()
		if total <= prev {
			t.Errorf("%s: total cost %d not larger than previous variant (%d)", cfg.Name, total, prev)
		}
		prev = total
	}
}

func TestAlphaFlexibility(t *testing.T) {
	// The same hardware counters evaluated at a stricter alpha must be at
	// least as likely to pass; verify thresholds move the right way.
	cfg := mustConfig(t, 65536, hwblock.Light)
	cvLoose, err := NewCriticalValues(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cvStrict, err := NewCriticalValues(cfg, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if cvStrict.monobitSMax <= cvLoose.monobitSMax {
		t.Error("monobit bound did not widen at smaller alpha")
	}
	if cvStrict.blockFreqMax <= cvLoose.blockFreqMax {
		t.Error("block-frequency bound did not widen at smaller alpha")
	}
	if cvStrict.cusumZMin <= cvLoose.cusumZMin {
		t.Error("cusum bound did not widen at smaller alpha")
	}
}

func TestAlphaValidation(t *testing.T) {
	cfg := mustConfig(t, 128, hwblock.Light)
	for _, a := range []float64{0, -0.1, 0.5, 1} {
		if _, err := NewCriticalValues(cfg, a); err == nil {
			t.Errorf("alpha %g accepted", a)
		}
	}
}

func TestEvaluateRejectsIncompleteBlock(t *testing.T) {
	cfg := mustConfig(t, 128, hwblock.Light)
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Clock(1) // only one bit
	cv, err := NewCriticalValues(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(cv).Evaluate(b); err == nil {
		t.Error("evaluation of an incomplete sequence accepted")
	}
}

func TestEvaluateRejectsMismatchedDesign(t *testing.T) {
	cfgA := mustConfig(t, 128, hwblock.Light)
	cfgB := mustConfig(t, 65536, hwblock.Light)
	cv, err := NewCriticalValues(cfgB, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	s := trng.Read(trng.NewIdeal(19), cfgA.N)
	b := runBlock(t, cfgA, s)
	if _, err := NewEvaluator(cv).Evaluate(b); err == nil {
		t.Error("mismatched design accepted")
	}
}

func TestCostStringAndOps(t *testing.T) {
	var c Cost
	c[OpAdd] = 3
	c[OpRead] = 2
	s := c.String()
	if s == "" || c.Total() != 5 {
		t.Errorf("cost bookkeeping wrong: %q total=%d", s, c.Total())
	}
	for op := OpAdd; op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty label", op)
		}
	}
}

func TestMeterDecomposesWideOperations(t *testing.T) {
	m := &meter{}
	// A 32-bit value needs 2 limbs: adding two of them costs 2 ADDs.
	m.add(1<<30, 1<<30)
	if m.cost[OpAdd] != 2 {
		t.Errorf("32-bit add cost %d ADD, want 2", m.cost[OpAdd])
	}
	m = &meter{}
	// Squaring a 2-limb value: 2 SQR + 1 MUL (cross term) + 1 ADD.
	m.sqr(1 << 20)
	if m.cost[OpSqr] != 2 || m.cost[OpMul] != 1 {
		t.Errorf("2-limb square cost SQR=%d MUL=%d, want 2/1", m.cost[OpSqr], m.cost[OpMul])
	}
	m = &meter{}
	m.mul(3, 5) // single-limb multiply
	if m.cost[OpMul] != 1 || m.cost[OpAdd] != 0 {
		t.Errorf("1-limb mul cost MUL=%d ADD=%d, want 1/0", m.cost[OpMul], m.cost[OpAdd])
	}
}

func TestPerTestCostsSumToTotal(t *testing.T) {
	cfg := mustConfig(t, 128, hwblock.Medium)
	s := trng.Read(trng.NewIdeal(23), cfg.N)
	rep := evaluate(t, cfg, s, 0.01)
	var sum Cost
	for _, c := range rep.PerTest {
		sum.Add(c)
	}
	if sum != rep.Cost {
		t.Errorf("per-test costs %v do not sum to total %v", sum, rep.Cost)
	}
}

// TestFalseAlarmCalibration checks that no embedded threshold is
// systematically leaky: over 400 ideal sequences at alpha = 0.01, each
// test's failure count must stay within a generous binomial band around
// 400·alpha = 4 (discreteness at n = 128 makes true rates conservative,
// so only the upper bound is asserted).
func TestFalseAlarmCalibration(t *testing.T) {
	cfg := mustConfig(t, 128, hwblock.Medium)
	cv, err := NewCriticalValues(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(cv)
	fails := map[int]int{}
	const trials = 400
	for seed := int64(0); seed < trials; seed++ {
		b := runBlock(t, cfg, trng.Read(trng.NewIdeal(seed+9000), cfg.N))
		rep, err := ev.Evaluate(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range rep.Failed() {
			fails[id]++
		}
	}
	t.Logf("per-test failures over %d ideal sequences: %v", trials, fails)
	for id, count := range fails {
		// Binomial(400, 0.01): mean 4, sd 2; 16 is an 6-sigma bound.
		if count > 16 {
			t.Errorf("test %d failed %d of %d ideal sequences — threshold leaks", id, count, trials)
		}
	}
}
