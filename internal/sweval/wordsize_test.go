package sweval

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/hwblock"
	"repro/internal/trng"
)

// TestWiderWordSizeReducesCost reproduces the paper's Table III discussion:
// "instructions operating on data larger than 16-bit have to be decomposed
// into several 16-bit operations. We can expect that, on 32-bit or 64-bit
// platforms, considerably lower latency could be achieved."
func TestWiderWordSizeReducesCost(t *testing.T) {
	cfg, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(bitstream.NewReader(trng.Read(trng.NewIdeal(1), cfg.N))); err != nil {
		t.Fatal(err)
	}
	cv, err := NewCriticalValues(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}

	totals := map[int]int{}
	var verdicts16 []Verdict
	for _, wb := range []int{WordSize16, WordSize32, WordSize64} {
		ev, err := NewEvaluatorWordSize(cv, wb)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ev.Evaluate(b)
		if err != nil {
			t.Fatal(err)
		}
		// READ is a bus property and must not change with CPU word size.
		totals[wb] = rep.Cost.Total() - rep.Cost.Get(OpRead)
		if wb == WordSize16 {
			verdicts16 = rep.Verdicts
		} else {
			// Decisions are word-size independent.
			for i, v := range rep.Verdicts {
				if v.Pass != verdicts16[i].Pass {
					t.Errorf("word size %d changed test %d's verdict", wb, v.TestID)
				}
			}
		}
	}
	if !(totals[WordSize32] < totals[WordSize16]) {
		t.Errorf("32-bit cost %d not below 16-bit cost %d", totals[WordSize32], totals[WordSize16])
	}
	if !(totals[WordSize64] <= totals[WordSize32]) {
		t.Errorf("64-bit cost %d above 32-bit cost %d", totals[WordSize64], totals[WordSize32])
	}
	t.Logf("arithmetic cost by word size: 16-bit=%d 32-bit=%d 64-bit=%d",
		totals[WordSize16], totals[WordSize32], totals[WordSize64])
}

func TestReadCostIndependentOfWordSize(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(bitstream.NewReader(trng.Read(trng.NewIdeal(2), cfg.N))); err != nil {
		t.Fatal(err)
	}
	cv, err := NewCriticalValues(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var reads []int
	for _, wb := range []int{WordSize16, WordSize64} {
		ev, err := NewEvaluatorWordSize(cv, wb)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ev.Evaluate(b)
		if err != nil {
			t.Fatal(err)
		}
		reads = append(reads, rep.Cost.Get(OpRead))
	}
	if reads[0] != reads[1] {
		t.Errorf("READ count changed with word size: %d vs %d", reads[0], reads[1])
	}
}

func TestInvalidWordSizeRejected(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := NewCriticalValues(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, wb := range []int{0, 8, 24, 128} {
		if _, err := NewEvaluatorWordSize(cv, wb); err == nil {
			t.Errorf("word size %d accepted", wb)
		}
	}
}
