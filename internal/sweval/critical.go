package sweval

import (
	"fmt"
	"math"

	"repro/internal/hwblock"
	"repro/internal/nist"
	"repro/internal/specfunc"
)

// RunsMethod selects how the runs test's acceptance bound is evaluated on
// the embedded core.
type RunsMethod int

const (
	// RunsExact computes the bound from N_ones with fixed-point integer
	// arithmetic (one multiply, one shift, comparisons). Bit-exact
	// agreement with the reference test's decision.
	RunsExact RunsMethod = iota
	// RunsTable looks the bound up in a precompiled interval table
	// indexed by where N_ones falls — the method the paper describes
	// ("the SW procedure first checks the interval where N_ones belongs
	// and based on the result, compares N_runs with the appropriate
	// constant"). Slightly conservative at interval edges.
	RunsTable
)

// runsRow is one row of the RunsTable method: while |S_final| ≤ sAbsMax,
// the accepted runs count is [vLo, vHi].
type runsRow struct {
	sAbsMax int64
	vLo     int64
	vHi     int64
}

// CriticalValues holds every constant the embedded software needs for one
// design at one level of significance — the data a real deployment would
// compile into firmware. Computing them uses floating point and the
// special functions, but happens offline; the evaluation path (eval.go)
// touches only these integers.
type CriticalValues struct {
	// Alpha is the level of significance the constants encode.
	Alpha float64
	cfg   hwblock.Config

	// Test 1: fail iff |S_final| > monobitSMax.
	monobitSMax int64

	// Test 2: fail iff Σ(2ε_i − M)² > blockFreqMax.
	blockFreqMax int64

	// Test 3, exact method: precondition fail iff |S_final| ≥ runsPreSAbs;
	// then fail iff |n·V − 2·ones·zeros| > (runsKQ16·ones·zeros) >> 16.
	runsPreSAbs int64
	runsKQ16    int64
	// Test 3, table method.
	runsMethod RunsMethod
	runsRows   []runsRow

	// Test 4: fail iff Σ ν_i²·longestRunQ16[i] > longestRunMax (Q16).
	longestRunQ16 []int64
	longestRunMax int64

	// Test 7: fail iff Σ(2^m·W_i − (M−m+1))² > nonOvMax.
	nonOvMax int64

	// Test 8: fail iff Σ ν_i²·overlapQ16[i] > overlapMax (Q16).
	overlapQ16 []int64
	overlapMax int64

	// Test 11: fail iff n·∇ψ² > serialMax1 or n·∇²ψ² > serialMax2.
	serialMax1 int64
	serialMax2 int64

	// Test 12: fail iff apenQ16 < apenMinQ16, with apenQ16 evaluated
	// through the PWL table.
	apenMinQ16 int64
	pwl        *XLogXTable

	// Test 13: fail iff z ≥ cusumZMin (either direction).
	cusumZMin int64
}

// Option tweaks the critical-value computation.
type Option func(*CriticalValues)

// WithRunsMethod selects the runs-test evaluation method (default
// RunsTable, the paper's approach).
func WithRunsMethod(m RunsMethod) Option {
	return func(cv *CriticalValues) { cv.runsMethod = m }
}

// runsTableRows is the number of N_ones intervals in the RunsTable method.
const runsTableRows = 16

// Config returns the design the constants were derived for. Critical
// values are read-only after construction, so one derivation can be shared
// across many monitors of the same design (see core.NewMonitorWithValues).
func (cv *CriticalValues) Config() hwblock.Config { return cv.cfg }

// NewCriticalValues precomputes the constants for the given design at level
// of significance alpha (NIST recommends alpha in [0.001, 0.01]). This is
// the flexibility the HW/SW split buys: changing alpha regenerates these
// constants without touching the hardware.
func NewCriticalValues(cfg hwblock.Config, alpha float64, opts ...Option) (*CriticalValues, error) {
	if alpha <= 0 || alpha >= 0.5 {
		return nil, fmt.Errorf("sweval: alpha %g out of range", alpha)
	}
	n := float64(cfg.N)
	cv := &CriticalValues{
		Alpha:      alpha,
		cfg:        cfg,
		runsMethod: RunsTable,
		pwl:        NewXLogXTable(),
	}
	for _, opt := range opts {
		opt(cv)
	}

	// z such that erfc(z/√2) = alpha, i.e. the two-sided normal bound.
	zq, err := specfunc.NormalQuantile(1 - alpha/2)
	if err != nil {
		return nil, err
	}

	// Test 1: |S|/√n > z·... s_obs = |S|/√n, P = erfc(s_obs/√2) < alpha
	// iff s_obs > zq, iff |S| > zq·√n.
	cv.monobitSMax = int64(math.Floor(zq * math.Sqrt(n)))

	if cfg.Has(2) {
		m := cfg.Params.BlockFrequencyM
		nBlocks := cfg.N / m
		crit, err := specfunc.ChiSquareQuantile(alpha, nBlocks)
		if err != nil {
			return nil, err
		}
		// D = Σ(2ε−M)² = M·χ².
		cv.blockFreqMax = int64(math.Floor(float64(m) * crit))
	}

	if cfg.Has(3) {
		cv.runsPreSAbs = int64(math.Ceil(4 * math.Sqrt(n)))
		// |n·V − 2·ones·zeros| > zq·2√(2n)·ones·zeros/n
		//                      = (runsKQ16/2^16)·ones·zeros.
		k := zq * 2 * math.Sqrt(2*n) / n
		cv.runsKQ16 = int64(math.Round(k * pwlScale))
		cv.runsRows = buildRunsTable(cfg.N, zq)
	}

	if cfg.Has(4) {
		m := cfg.Params.LongestRunM
		nBlocks := cfg.N / m
		lo, hi, err := nist.LongestRunClassBounds(m)
		if err != nil {
			return nil, err
		}
		probs, err := nist.LongestRunClassProbs(m, lo, hi)
		if err != nil {
			return nil, err
		}
		k := len(probs) - 1
		crit, err := specfunc.ChiSquareQuantile(alpha, k)
		if err != nil {
			return nil, err
		}
		cv.longestRunQ16 = make([]int64, len(probs))
		for i, p := range probs {
			cv.longestRunQ16[i] = int64(math.Round(pwlScale / (float64(nBlocks) * p)))
		}
		// χ² = Σν²/(Nπ) − N > crit  ⟺  Σν²·Q > (crit + N)·2^16.
		cv.longestRunMax = int64(math.Floor((crit + float64(nBlocks)) * pwlScale))
	}

	if cfg.Has(7) {
		m := cfg.Params.TemplateM
		nBlocks := cfg.Params.NonOverlappingN
		blockLen := cfg.N / nBlocks
		crit, err := specfunc.ChiSquareQuantile(alpha, nBlocks)
		if err != nil {
			return nil, err
		}
		sigma2 := float64(blockLen) * (1/math.Pow(2, float64(m)) -
			float64(2*m-1)/math.Pow(2, float64(2*m)))
		// D = Σ(2^m·W − (M−m+1))² = 2^2m·σ²·χ².
		cv.nonOvMax = int64(math.Floor(crit * sigma2 * math.Pow(2, float64(2*m))))
	}

	if cfg.Has(8) {
		m := cfg.Params.TemplateM
		blockLen := cfg.Params.OverlappingM
		nBlocks := cfg.N / blockLen
		k := nist.OverlappingTemplateK
		tpl := uint32(1<<uint(m)) - 1
		probs, err := nist.OverlappingTemplateClassProbs(tpl, m, blockLen, k)
		if err != nil {
			return nil, err
		}
		crit, err := specfunc.ChiSquareQuantile(alpha, k)
		if err != nil {
			return nil, err
		}
		cv.overlapQ16 = make([]int64, len(probs))
		for i, p := range probs {
			cv.overlapQ16[i] = int64(math.Round(pwlScale / (float64(nBlocks) * p)))
		}
		cv.overlapMax = int64(math.Floor((crit + float64(nBlocks)) * pwlScale))
	}

	if cfg.Has(11) {
		m := cfg.Params.SerialM
		// P1 = igamc(2^{m−2}, ∇/2) < alpha ⟺ ∇ > x where
		// igamc(2^{m−2}, x/2) = alpha, i.e. x = ChiSquareQuantile(alpha, 2^{m−1}).
		x1, err := specfunc.ChiSquareQuantile(alpha, 1<<uint(m-1))
		if err != nil {
			return nil, err
		}
		x2, err := specfunc.ChiSquareQuantile(alpha, 1<<uint(m-2))
		if err != nil {
			return nil, err
		}
		cv.serialMax1 = int64(math.Floor(n * x1))
		cv.serialMax2 = int64(math.Floor(n * x2))
	}

	if cfg.Has(12) {
		m := cfg.Params.SerialM - 1 // ApEn block length (test 12 reuses the serial counters)
		// P = igamc(2^{m−1}, χ²/2) < alpha ⟺ χ² > ChiSquareQuantile(alpha, 2^m).
		x, err := specfunc.ChiSquareQuantile(alpha, 1<<uint(m))
		if err != nil {
			return nil, err
		}
		// χ² = 2n(ln2 − ApEn) > x ⟺ ApEn < ln2 − x/(2n) — the exact
		// threshold. The PWL evaluation shifts the measured ApEn by a
		// systematic bias and adds quantization noise that, at large n,
		// dominates the statistic's own sampling variance; the embedded
		// threshold absorbs both with an offline-computed compensation
		// (see apenPWLCompensation). This refinement is necessary to
		// keep the PWL implementation's false-alarm rate near alpha —
		// the paper's "<3 % error" figure alone does not guarantee
		// decision equivalence. Documented in EXPERIMENTS.md.
		biasDiff, noise := apenPWLCompensation(cv.pwl, cfg.N, m)
		margin := x/(2*n) - biasDiff + 6*noise
		cv.apenMinQ16 = int64(math.Round((math.Ln2 - margin) * pwlScale))
	}

	// Test 13: smallest z with CusumPValue(z, N) < alpha.
	lo, hi := int64(1), int64(cfg.N)
	for lo < hi {
		mid := (lo + hi) / 2
		if nist.CusumPValue(int(mid), cfg.N) < alpha {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cv.cusumZMin = lo

	return cv, nil
}

// apenPWLCompensation computes, offline, the systematic shift and the noise
// the PWL evaluation adds to the ApEn statistic under H₀. For a pattern
// width w, the per-pattern frequency x = ν/n fluctuates around 2^−w with
// standard deviation ≈ √(2^−w(1−2^−w)/n); the chord of the convex x·ln(x)
// lies above the function, so each PWL term carries a positive error e(x).
// The routine integrates e against the frequency's normal density to get
// the expected bias and variance per term, then combines the φ_m and
// φ_{m+1} sums.
//
// Returns biasDiff = E[apen_pwl − apen_true] (≤ 0: the wider bank's bias
// dominates) and noise = the standard deviation of the PWL-induced error of
// the apen statistic.
func apenPWLCompensation(pwl *XLogXTable, n, m int) (biasDiff, noise float64) {
	termStats := func(w int) (mean, variance float64) {
		mu := math.Pow(2, -float64(w))
		sigma := math.Sqrt(mu * (1 - mu) / float64(n))
		// Simpson integration of e(x)·φ and e(x)²·φ over ±8σ.
		const steps = 400
		lo, hi := mu-8*sigma, mu+8*sigma
		if lo < 0 {
			lo = 0
		}
		h := (hi - lo) / steps
		var m1, m2 float64
		for i := 0; i <= steps; i++ {
			x := lo + float64(i)*h
			e := pwl.EvalFloat(x)
			if x > 0 {
				e -= x * math.Log(x)
			}
			z := (x - mu) / sigma
			dens := math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
			wgt := 2.0
			if i%2 == 1 {
				wgt = 4
			}
			if i == 0 || i == steps {
				wgt = 1
			}
			m1 += wgt * e * dens
			m2 += wgt * e * e * dens
		}
		m1 *= h / 3
		m2 *= h / 3
		return m1, m2 - m1*m1
	}
	meanM, varM := termStats(m)       // φ_m bank: 2^m patterns
	meanM1, varM1 := termStats(m + 1) // φ_{m+1} bank: 2^{m+1} patterns
	biasM := math.Pow(2, float64(m)) * meanM
	biasM1 := math.Pow(2, float64(m+1)) * meanM1
	// apen = φ_m − φ_{m+1}: the banks' errors subtract. Treat terms as
	// independent for the guard band (conservative enough in practice).
	biasDiff = biasM - biasM1
	noise = math.Sqrt(math.Pow(2, float64(m))*varM + math.Pow(2, float64(m+1))*varM1)
	return biasDiff, noise
}

// buildRunsTable constructs the interval table for the RunsTable method:
// rows over |S_final| buckets from 0 to the precondition bound, each row
// holding the widest acceptance interval for the runs count over its
// bucket (conservative: interval-edge sequences are accepted, never
// spuriously rejected).
func buildRunsTable(n int, zq float64) []runsRow {
	nf := float64(n)
	preBound := 4 * math.Sqrt(nf)
	rows := make([]runsRow, 0, runsTableRows)
	for i := 1; i <= runsTableRows; i++ {
		sEdge := preBound * float64(i) / runsTableRows
		// Evaluate the acceptance interval at both bucket edges and keep
		// the union.
		var vLo, vHi float64 = math.Inf(1), math.Inf(-1)
		for _, s := range []float64{preBound * float64(i-1) / runsTableRows, sEdge} {
			ones := (nf + s) / 2
			zeros := nf - ones
			pi := ones / nf
			center := 2 * nf * pi * (1 - pi)
			half := zq * 2 * math.Sqrt(2*nf) * pi * (1 - pi)
			_ = zeros
			if center-half < vLo {
				vLo = center - half
			}
			if center+half > vHi {
				vHi = center + half
			}
		}
		rows = append(rows, runsRow{
			sAbsMax: int64(math.Ceil(sEdge)),
			vLo:     int64(math.Floor(vLo)),
			vHi:     int64(math.Ceil(vHi)),
		})
	}
	return rows
}
