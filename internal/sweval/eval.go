package sweval

import (
	"fmt"

	"repro/internal/hwblock"
)

// Verdict is the outcome of one test's software evaluation.
type Verdict struct {
	// TestID is the SP800-22 test number.
	TestID int
	// Pass reports whether the randomness hypothesis is accepted at the
	// critical values' alpha.
	Pass bool
	// Statistic is the integer (or Q16 fixed-point) test statistic the
	// embedded routine computed.
	Statistic int64
	// Threshold is the precomputed constant the statistic was compared
	// against.
	Threshold int64
	// Note carries auxiliary detail (e.g. which serial statistic failed).
	Note string
}

// Report is the result of one full software evaluation pass over the
// register file.
type Report struct {
	// Verdicts holds one entry per implemented test, ascending by TestID.
	Verdicts []Verdict
	// Cost is the total instruction count of the pass, in the paper's
	// Table III categories.
	Cost Cost
	// PerTest breaks the cost down by test (shared reads are charged to
	// the first consumer, mirroring the paper's shared-counter account).
	PerTest map[int]Cost
}

// Pass reports whether every implemented test accepted.
func (r *Report) Pass() bool {
	for _, v := range r.Verdicts {
		if !v.Pass {
			return false
		}
	}
	return true
}

// Failed lists the test numbers that rejected.
func (r *Report) Failed() []int {
	var out []int
	for _, v := range r.Verdicts {
		if !v.Pass {
			out = append(out, v.TestID)
		}
	}
	return out
}

// Evaluator runs the embedded software routine: it reads raw counters from
// a block's register file and turns them into pass/fail verdicts using only
// metered integer operations against the precomputed critical values. The
// default word size is 16 bits (the paper's platform); a wider word size
// meters the same routine on a 32- or 64-bit core. Bus READs always count
// 16-bit words — the register-file interface width is a hardware property.
type Evaluator struct {
	cv       *CriticalValues
	wordBits int

	// Register names are fixed by the design, so they are formatted once
	// here instead of once per sequence: a fleet evaluating thousands of
	// sequences per second would otherwise spend a visible fraction of its
	// time in fmt.Sprintf building the same strings.
	bfNames     []string         // BF_EPS_i, test 2
	lrNames     []string         // LR_NU_i, test 4
	noNames     []string         // NO_W_i, test 7
	ovNames     []string         // OV_NU_i, test 8
	serialNames map[int][]string // SERIAL_NUw_pattern by width, tests 11/12
}

// NewEvaluator returns an evaluator bound to one set of critical values,
// metering at the paper's 16-bit word size.
func NewEvaluator(cv *CriticalValues) *Evaluator {
	ev := &Evaluator{cv: cv, wordBits: WordSize16}
	ev.buildNames()
	return ev
}

// NewEvaluatorWordSize returns an evaluator metering at the given word size
// (WordSize16, WordSize32 or WordSize64).
func NewEvaluatorWordSize(cv *CriticalValues, wordBits int) (*Evaluator, error) {
	switch wordBits {
	case WordSize16, WordSize32, WordSize64:
		ev := &Evaluator{cv: cv, wordBits: wordBits}
		ev.buildNames()
		return ev, nil
	}
	return nil, fmt.Errorf("sweval: unsupported word size %d", wordBits)
}

// buildNames precomputes the per-counter register names the configured
// tests will read.
func (ev *Evaluator) buildNames() {
	cfg := ev.cv.cfg
	for _, id := range cfg.Tests {
		switch id {
		case 2:
			if cfg.Params.BlockFrequencyM > 0 {
				nBlocks := cfg.N / cfg.Params.BlockFrequencyM
				ev.bfNames = make([]string, nBlocks)
				for i := range ev.bfNames {
					ev.bfNames[i] = fmt.Sprintf("BF_EPS_%d", i)
				}
			}
		case 4:
			ev.lrNames = make([]string, len(ev.cv.longestRunQ16))
			for i := range ev.lrNames {
				ev.lrNames[i] = fmt.Sprintf("LR_NU_%d", i)
			}
		case 7:
			ev.noNames = make([]string, cfg.Params.NonOverlappingN)
			for i := range ev.noNames {
				ev.noNames[i] = fmt.Sprintf("NO_W_%d", i)
			}
		case 8:
			ev.ovNames = make([]string, len(ev.cv.overlapQ16))
			for i := range ev.ovNames {
				ev.ovNames[i] = fmt.Sprintf("OV_NU_%d", i)
			}
		case 11, 12:
			for w := cfg.Params.SerialM; w >= cfg.Params.SerialM-2 && w >= 1; w-- {
				if ev.serialNames == nil {
					ev.serialNames = make(map[int][]string)
				}
				if _, ok := ev.serialNames[w]; ok {
					continue
				}
				names := make([]string, 1<<uint(w))
				for pat := range names {
					names[pat] = fmt.Sprintf("SERIAL_NU%d_%0*b", w, w, pat)
				}
				ev.serialNames[w] = names
			}
		}
	}
}

// cachedName returns names[i] when cached, formatting the name only when
// the index is outside the precomputed range.
func cachedName(names []string, prefix string, i int) string {
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("%s%d", prefix, i)
}

// serialName returns the cached SERIAL_NUw_pattern register name, falling
// back to formatting for widths outside the precomputed set.
func (ev *Evaluator) serialName(w, pat int) string {
	if names := ev.serialNames[w]; pat < len(names) {
		return names[pat]
	}
	return fmt.Sprintf("SERIAL_NU%d_%0*b", w, w, pat)
}

// newMeter builds a meter at the evaluator's word size.
func (ev *Evaluator) newMeter() *meter { return &meter{wordBits: ev.wordBits} }

// Evaluate performs one software pass over the block's register file. The
// block must have absorbed a full sequence.
func (ev *Evaluator) Evaluate(b *hwblock.Block) (*Report, error) {
	if !b.Done() {
		return nil, fmt.Errorf("sweval: hardware block has only seen %d of %d bits", b.BitsSeen(), b.Config().N)
	}
	if b.Config().Name != ev.cv.cfg.Name {
		return nil, fmt.Errorf("sweval: critical values are for design %s, block is %s", ev.cv.cfg.Name, b.Config().Name)
	}
	cfg := b.Config()
	rf := b.RegFile()
	rep := &Report{PerTest: make(map[int]Cost)}
	n := int64(cfg.N)

	readVal := func(m *meter, name string) (int64, error) {
		v, busReads, err := rf.ReadValue(name)
		if err != nil {
			return 0, err
		}
		m.read(busReads)
		return int64(v), nil
	}

	// Shared walk values, charged to test 13 (their home) as in the
	// paper's unified register map.
	mWalk := ev.newMeter()
	sMaxRaw, err := readVal(mWalk, "S_MAX")
	if err != nil {
		return nil, err
	}
	sMinRaw, err := readVal(mWalk, "S_MIN")
	if err != nil {
		return nil, err
	}
	sFinRaw, err := readVal(mWalk, "S_FINAL")
	if err != nil {
		return nil, err
	}
	// Recenter the offset-binary values: S = raw − n.
	sMax := mWalk.sub(sMaxRaw, n)
	sMin := mWalk.sub(sMinRaw, n)
	sFin := mWalk.sub(sFinRaw, n)
	// The omitted-counter trick: N_ones = raw/2 (raw = S+n = 2·ones).
	ones := mWalk.shr(sFinRaw, 1)
	zeros := mWalk.sub(n, ones)

	addVerdict := func(m *meter, v Verdict) {
		rep.Verdicts = append(rep.Verdicts, v)
		rep.PerTest[v.TestID] = m.cost
		rep.Cost.Add(m.cost)
	}

	for _, id := range cfg.Tests {
		switch id {
		case 1:
			m := ev.newMeter()
			absS := sFin
			if m.cmpGreater(0, absS) {
				absS = m.sub(0, absS)
			}
			pass := !m.cmpGreater(absS, ev.cv.monobitSMax)
			addVerdict(m, Verdict{TestID: 1, Pass: pass, Statistic: absS, Threshold: ev.cv.monobitSMax})

		case 2:
			m := ev.newMeter()
			bigM := int64(cfg.Params.BlockFrequencyM)
			nBlocks := cfg.N / cfg.Params.BlockFrequencyM
			var d int64
			for i := 0; i < nBlocks; i++ {
				eps, err := readVal(m, cachedName(ev.bfNames, "BF_EPS_", i))
				if err != nil {
					return nil, err
				}
				dev := m.sub(m.shl(eps, 1), bigM) // 2ε − M
				d = m.add(d, m.sqr(dev))
			}
			pass := !m.cmpGreater(d, ev.cv.blockFreqMax)
			addVerdict(m, Verdict{TestID: 2, Pass: pass, Statistic: d, Threshold: ev.cv.blockFreqMax})

		case 3:
			m := ev.newMeter()
			v, err := readVal(m, "N_RUNS")
			if err != nil {
				return nil, err
			}
			verdict := ev.evalRuns(m, n, sFin, ones, zeros, v)
			addVerdict(m, verdict)

		case 4:
			m := ev.newMeter()
			nBlocks := int64(cfg.N / cfg.Params.LongestRunM)
			var sum int64
			for i := range ev.cv.longestRunQ16 {
				nu, err := readVal(m, cachedName(ev.lrNames, "LR_NU_", i))
				if err != nil {
					return nil, err
				}
				sum = m.add(sum, m.mul(m.sqr(nu), ev.cv.longestRunQ16[i]))
			}
			_ = nBlocks
			pass := !m.cmpGreater(sum, ev.cv.longestRunMax)
			addVerdict(m, Verdict{TestID: 4, Pass: pass, Statistic: sum, Threshold: ev.cv.longestRunMax})

		case 7:
			m := ev.newMeter()
			tm := cfg.Params.TemplateM
			blockLen := int64(cfg.N / cfg.Params.NonOverlappingN)
			muScaled := m.sub(blockLen, int64(tm-1)) // μ·2^m = M − m + 1
			var d int64
			for i := 0; i < cfg.Params.NonOverlappingN; i++ {
				w, err := readVal(m, cachedName(ev.noNames, "NO_W_", i))
				if err != nil {
					return nil, err
				}
				dev := m.sub(m.shl(w, uint(tm)), muScaled)
				d = m.add(d, m.sqr(dev))
			}
			pass := !m.cmpGreater(d, ev.cv.nonOvMax)
			addVerdict(m, Verdict{TestID: 7, Pass: pass, Statistic: d, Threshold: ev.cv.nonOvMax})

		case 8:
			m := ev.newMeter()
			var sum int64
			for i := range ev.cv.overlapQ16 {
				nu, err := readVal(m, cachedName(ev.ovNames, "OV_NU_", i))
				if err != nil {
					return nil, err
				}
				sum = m.add(sum, m.mul(m.sqr(nu), ev.cv.overlapQ16[i]))
			}
			pass := !m.cmpGreater(sum, ev.cv.overlapMax)
			addVerdict(m, Verdict{TestID: 8, Pass: pass, Statistic: sum, Threshold: ev.cv.overlapMax})

		case 11:
			m := ev.newMeter()
			sm := cfg.Params.SerialM
			a, err := ev.sumSquares(m, sm, readVal)
			if err != nil {
				return nil, err
			}
			a1, err := ev.sumSquares(m, sm-1, readVal)
			if err != nil {
				return nil, err
			}
			a2, err := ev.sumSquares(m, sm-2, readVal)
			if err != nil {
				return nil, err
			}
			// n·∇ψ² = 2^m·A_m − 2^{m−1}·A_{m−1}
			x1 := m.sub(m.shl(a, uint(sm)), m.shl(a1, uint(sm-1)))
			// n·∇²ψ² = 2^m·A_m − 2^m·A_{m−1} + 2^{m−2}·A_{m−2}
			x2 := m.add(m.sub(m.shl(a, uint(sm)), m.shl(a1, uint(sm))), m.shl(a2, uint(sm-2)))
			fail1 := m.cmpGreater(x1, ev.cv.serialMax1)
			fail2 := m.cmpGreater(x2, ev.cv.serialMax2)
			note := ""
			if fail1 {
				note = "del-psi2"
			}
			if fail2 {
				note += " del2-psi2"
			}
			addVerdict(m, Verdict{TestID: 11, Pass: !fail1 && !fail2, Statistic: x1, Threshold: ev.cv.serialMax1, Note: note})

		case 12:
			m := ev.newMeter()
			sm := cfg.Params.SerialM
			// φ_m in Q16 via the PWL table, reusing the serial counters
			// (m−1 = 3-bit and m = 4-bit banks for SerialM = 4).
			phi4, err := ev.phiQ16(m, cfg, sm, readVal)
			if err != nil {
				return nil, err
			}
			phi3, err := ev.phiQ16(m, cfg, sm-1, readVal)
			if err != nil {
				return nil, err
			}
			apen := m.sub(phi3, phi4)
			pass := !m.cmpGreater(ev.cv.apenMinQ16, apen)
			addVerdict(m, Verdict{TestID: 12, Pass: pass, Statistic: apen, Threshold: ev.cv.apenMinQ16})

		case 13:
			m := mWalk // inherits the shared walk reads
			// Forward: z = max(S_max, −S_min).
			zf := sMax
			negMin := m.sub(0, sMin)
			if m.cmpGreater(negMin, zf) {
				zf = negMin
			}
			// Backward: z = max(S_final − S_min, S_max − S_final).
			zb := m.sub(sFin, sMin)
			alt := m.sub(sMax, sFin)
			if m.cmpGreater(alt, zb) {
				zb = alt
			}
			failF := !m.cmpGreater(ev.cv.cusumZMin, zf) // zf ≥ zMin
			failB := !m.cmpGreater(ev.cv.cusumZMin, zb)
			note := ""
			if failF {
				note = "forward"
			}
			if failB {
				note += " backward"
			}
			z := zf
			if zb > z {
				z = zb
			}
			addVerdict(m, Verdict{TestID: 13, Pass: !failF && !failB, Statistic: z, Threshold: ev.cv.cusumZMin, Note: note})

		default:
			return nil, fmt.Errorf("sweval: no software routine for test %d", id)
		}
	}
	return rep, nil
}

// evalRuns dispatches on the configured runs-test method.
func (ev *Evaluator) evalRuns(m *meter, n, sFin, ones, zeros, v int64) Verdict {
	absS := sFin
	if m.cmpGreater(0, absS) {
		absS = m.sub(0, absS)
	}
	// Frequency precondition: |S| ≥ 4√n means instant failure.
	if !m.cmpGreater(ev.cv.runsPreSAbs, absS) {
		return Verdict{TestID: 3, Pass: false, Statistic: v, Note: "precondition"}
	}
	switch ev.cv.runsMethod {
	case RunsExact:
		// |n·V − 2·ones·zeros| > (kQ16·ones·zeros) >> 16 ?
		lhs := m.sub(m.mul(n, v), m.shl(m.mul(ones, zeros), 1))
		if m.cmpGreater(0, lhs) {
			lhs = m.sub(0, lhs)
		}
		rhs := m.shr(m.mul(ev.cv.runsKQ16, m.mul(ones, zeros)), pwlFracBits)
		pass := !m.cmpGreater(lhs, rhs)
		return Verdict{TestID: 3, Pass: pass, Statistic: lhs, Threshold: rhs}
	default: // RunsTable
		for _, row := range ev.cv.runsRows {
			if m.cmpGreater(absS, row.sAbsMax) {
				continue
			}
			failLo := m.cmpGreater(row.vLo, v)
			failHi := m.cmpGreater(v, row.vHi)
			return Verdict{TestID: 3, Pass: !failLo && !failHi, Statistic: v, Threshold: row.vHi}
		}
		// Beyond the last row (cannot happen when the precondition
		// passed, kept for safety): reject.
		return Verdict{TestID: 3, Pass: false, Statistic: v, Note: "table overflow"}
	}
}

// sumSquares reads every w-bit serial pattern counter and accumulates Σν².
func (ev *Evaluator) sumSquares(m *meter, w int, readVal func(*meter, string) (int64, error)) (int64, error) {
	var sum int64
	for pat := 0; pat < 1<<uint(w); pat++ {
		v, err := readVal(m, ev.serialName(w, pat))
		if err != nil {
			return 0, err
		}
		sum = m.add(sum, m.sqr(v))
	}
	return sum, nil
}

// phiQ16 computes φ_w = Σ (ν/n)·ln(ν/n) in Q16 through the PWL table.
// n is a power of two, so ν/n in Q16 is a single shift.
func (ev *Evaluator) phiQ16(m *meter, cfg hwblock.Config, w int, readVal func(*meter, string) (int64, error)) (int64, error) {
	logN := uint(0)
	for 1<<logN < cfg.N {
		logN++
	}
	var phi int64
	for pat := 0; pat < 1<<uint(w); pat++ {
		nu, err := readVal(m, ev.serialName(w, pat))
		if err != nil {
			return 0, err
		}
		if nu == 0 {
			continue
		}
		var xQ16 int64
		if logN >= pwlFracBits {
			xQ16 = m.shr(nu, logN-pwlFracBits)
		} else {
			xQ16 = m.shl(nu, pwlFracBits-logN)
		}
		phi = m.add(phi, ev.cv.pwl.evalQ16(m, xQ16))
	}
	return phi, nil
}
