// Package sweval implements the software half of the paper's HW/SW split:
// the routines a 16-bit microcontroller runs on the raw counter values read
// from the hardware testing block. Every routine works in integer or
// fixed-point arithmetic against precomputed critical values — no erfc, no
// gamma functions, no floating point on the embedded path — and every
// operation is metered by the instruction-cost model whose categories
// (ADD, SUB, MUL, SQR, SHIFT, COMP, LUT, READ) are exactly the rows of the
// paper's Table III.
package sweval

import "fmt"

// Op is one instruction category of the paper's 16-bit cost model.
type Op int

// The Table III instruction categories.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpSqr
	OpShift
	OpComp
	OpLUT
	OpRead
	numOps
)

// String returns the Table III row label.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "ADD"
	case OpSub:
		return "SUB"
	case OpMul:
		return "MUL"
	case OpSqr:
		return "SQR"
	case OpShift:
		return "SHIFT"
	case OpComp:
		return "COMP"
	case OpLUT:
		return "LUT"
	case OpRead:
		return "READ"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Cost is an instruction-count vector over the model's categories.
type Cost [numOps]int

// Add accumulates another cost vector.
func (c *Cost) Add(o Cost) {
	for i := range c {
		c[i] += o[i]
	}
}

// Total returns the total instruction count.
func (c Cost) Total() int {
	t := 0
	for _, v := range c {
		t += v
	}
	return t
}

// Get returns the count for one category.
func (c Cost) Get(o Op) int { return c[o] }

func (c Cost) String() string {
	return fmt.Sprintf("ADD=%d SUB=%d MUL=%d SQR=%d SHIFT=%d COMP=%d LUT=%d READ=%d",
		c[OpAdd], c[OpSub], c[OpMul], c[OpSqr], c[OpShift], c[OpComp], c[OpLUT], c[OpRead])
}

// meter is the metered ALU: each helper performs the arithmetic on native
// integers and charges the cost a fixed-word-size core would pay, with wide
// operands decomposed into word-size limbs ("instructions operating on
// data larger than 16-bit have to be decomposed into several 16-bit
// operations"). wordBits is 16 for the paper's platform; the Table III
// discussion's expectation that "on 32-bit or 64-bit platforms,
// considerably lower latency could be achieved" is reproduced by metering
// the same routines at wider word sizes.
type meter struct {
	cost     Cost
	wordBits int
}

// words returns the number of limbs needed for a value of the given bit
// width at the meter's word size.
func (m *meter) words(bits int) int {
	wb := m.wordBits
	if wb == 0 {
		wb = WordSize16
	}
	if bits <= 0 {
		return 1
	}
	return (bits + wb - 1) / wb
}

// Supported cost-model word sizes.
const (
	WordSize16 = 16
	WordSize32 = 32
	WordSize64 = 64
)

// widthOf returns the bit width of v (minimum 1).
func widthOf(v uint64) int {
	w := 1
	for v>>uint(w) != 0 {
		w++
	}
	return w
}

// add computes a+b, charging one ADD per limb of the wider operand.
func (m *meter) add(a, b int64) int64 {
	w := m.words(widthOf(uint64(abs64(a) | abs64(b))))
	m.cost[OpAdd] += w
	return a + b
}

// sub computes a−b, charging one SUB per limb.
func (m *meter) sub(a, b int64) int64 {
	w := m.words(widthOf(uint64(abs64(a) | abs64(b))))
	m.cost[OpSub] += w
	return a - b
}

// mul computes a·b, charging limb-product MULs and carry ADDs.
func (m *meter) mul(a, b int64) int64 {
	wa, wb := m.words(widthOf(uint64(abs64(a)))), m.words(widthOf(uint64(abs64(b))))
	m.cost[OpMul] += wa * wb
	if wa*wb > 1 {
		m.cost[OpAdd] += wa*wb - 1 // partial-product accumulation
	}
	return a * b
}

// sqr computes a², charging SQRs on the diagonal limb products, MULs on the
// off-diagonal ones, and carry ADDs.
func (m *meter) sqr(a int64) int64 {
	w := m.words(widthOf(uint64(abs64(a))))
	m.cost[OpSqr] += w
	m.cost[OpMul] += w * (w - 1) / 2
	if w > 1 {
		m.cost[OpAdd] += w - 1
	}
	return a * a
}

// shl shifts left, charging one SHIFT.
func (m *meter) shl(a int64, k uint) int64 {
	m.cost[OpShift]++
	return a << k
}

// shr shifts right, charging one SHIFT.
func (m *meter) shr(a int64, k uint) int64 {
	m.cost[OpShift]++
	return a >> k
}

// cmpGreater reports a > b, charging one COMP per limb.
func (m *meter) cmpGreater(a, b int64) bool {
	w := m.words(widthOf(uint64(abs64(a) | abs64(b))))
	m.cost[OpComp] += w
	return a > b
}

// lut charges one table access (the PWL segment fetch).
func (m *meter) lut() {
	m.cost[OpLUT]++
}

// read charges the bus reads of one register-file value.
func (m *meter) read(busReads int) {
	m.cost[OpRead] += busReads
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}
