package sweval

// EmbeddedConstants is the exported snapshot of the precomputed critical
// values, in the form a firmware build would compile into flash. The
// internal/firmware package bakes these into the MSP430 evaluation routine.
type EmbeddedConstants struct {
	// Alpha is the level of significance the constants encode.
	Alpha float64
	// MonobitSMax: test 1 fails iff |S_final| > MonobitSMax.
	MonobitSMax int64
	// BlockFreqMax: test 2 fails iff Σ(2ε−M)² > BlockFreqMax.
	BlockFreqMax int64
	// RunsPreSAbs: test 3 fails outright iff |S_final| ≥ RunsPreSAbs.
	RunsPreSAbs int64
	// RunsRows is the interval table of the RunsTable method.
	RunsRows []RunsRow
	// LongestRunQ16 are the per-class 1/(Nπ) reciprocals in Q16.
	LongestRunQ16 []int64
	// LongestRunMax: test 4 fails iff Σν²·Q16 > LongestRunMax.
	LongestRunMax int64
	// CusumZMin: test 13 fails iff max excursion ≥ CusumZMin.
	CusumZMin int64
	// NonOvMax: test 7 fails iff Σ(2^m·W − (M−m+1))² > NonOvMax.
	NonOvMax int64
	// OverlapQ16 are test 8's per-class 1/(Nπ) reciprocals in Q16.
	OverlapQ16 []int64
	// OverlapMax: test 8 fails iff Σν²·Q16 > OverlapMax.
	OverlapMax int64
	// SerialMax1/SerialMax2: test 11 fails iff n·∇ψ² > SerialMax1 or
	// n·∇²ψ² > SerialMax2.
	SerialMax1 int64
	SerialMax2 int64
	// ApEnMinQ16: test 12 fails iff the PWL-evaluated ApEn (Q16) falls
	// below this.
	ApEnMinQ16 int64
	// PWL is the 32-segment x·log(x) table (Q16 slopes/intercepts).
	PWL []PWLRow
}

// PWLRow is one segment of the x·log(x) approximation.
type PWLRow struct {
	SlopeQ16     int64
	InterceptQ16 int64
}

// RunsRow is one row of the runs-test interval table: while
// |S_final| ≤ SAbsMax, the accepted runs count is [VLo, VHi].
type RunsRow struct {
	SAbsMax int64
	VLo     int64
	VHi     int64
}

// Constants exports the precomputed values for firmware generation.
func (cv *CriticalValues) Constants() EmbeddedConstants {
	rows := make([]RunsRow, len(cv.runsRows))
	for i, r := range cv.runsRows {
		rows[i] = RunsRow{SAbsMax: r.sAbsMax, VLo: r.vLo, VHi: r.vHi}
	}
	pwl := make([]PWLRow, PWLSegments)
	for i := range pwl {
		pwl[i] = PWLRow{SlopeQ16: cv.pwl.slope[i], InterceptQ16: cv.pwl.intercept[i]}
	}
	return EmbeddedConstants{
		Alpha:         cv.Alpha,
		MonobitSMax:   cv.monobitSMax,
		BlockFreqMax:  cv.blockFreqMax,
		RunsPreSAbs:   cv.runsPreSAbs,
		RunsRows:      rows,
		LongestRunQ16: append([]int64(nil), cv.longestRunQ16...),
		LongestRunMax: cv.longestRunMax,
		CusumZMin:     cv.cusumZMin,
		NonOvMax:      cv.nonOvMax,
		OverlapQ16:    append([]int64(nil), cv.overlapQ16...),
		OverlapMax:    cv.overlapMax,
		SerialMax1:    cv.serialMax1,
		SerialMax2:    cv.serialMax2,
		ApEnMinQ16:    cv.apenMinQ16,
		PWL:           pwl,
	}
}
