package sweval

import "math"

// This file implements the paper's Fig. 3: the function x·log(x) on [0, 1]
// approximated by 32 piece-wise linear segments, so the approximate-entropy
// test needs no logarithm on the embedded core — one table access, one
// multiply and one add per evaluation. The paper reports the approximation
// error below 3 %.

// PWLSegments is the number of linear segments (Fig. 3).
const PWLSegments = 32

// pwlFracBits is the fixed-point precision: inputs and outputs are Q16
// (value · 2^16).
const pwlFracBits = 16

// pwlScale is the Q16 unit.
const pwlScale = 1 << pwlFracBits

// XLogXTable holds the per-segment slope/intercept constants in Q16, the
// constants a real deployment would place in flash. Segment i covers
// x ∈ [i/32, (i+1)/32); the endpoints are interpolated so the approximation
// is continuous and exact at the segment boundaries.
type XLogXTable struct {
	slope     [PWLSegments]int64 // Q16 slope of x·ln(x) on the segment
	intercept [PWLSegments]int64 // Q16 intercept
}

// NewXLogXTable precomputes the segment constants. This runs offline (at
// firmware build time in a real deployment) and is therefore unmetered.
func NewXLogXTable() *XLogXTable {
	t := &XLogXTable{}
	f := func(x float64) float64 {
		if x <= 0 {
			return 0 // lim x→0 x·ln(x) = 0
		}
		return x * math.Log(x)
	}
	for i := 0; i < PWLSegments; i++ {
		x0 := float64(i) / PWLSegments
		x1 := float64(i+1) / PWLSegments
		y0, y1 := f(x0), f(x1)
		slope := (y1 - y0) / (x1 - x0)
		intercept := y0 - slope*x0
		t.slope[i] = int64(math.Round(slope * pwlScale))
		t.intercept[i] = int64(math.Round(intercept * pwlScale))
	}
	return t
}

// evalQ16 returns the PWL approximation of x·ln(x) for xQ16 ∈ [0, 2^16],
// metered as the embedded core would execute it: one LUT access for the
// segment constants, one multiply, one add, one shift.
func (t *XLogXTable) evalQ16(m *meter, xQ16 int64) int64 {
	if xQ16 <= 0 {
		return 0
	}
	seg := xQ16 >> (pwlFracBits - 5) // top 5 bits select one of 32 segments
	if seg >= PWLSegments {
		seg = PWLSegments - 1
	}
	m.lut()
	prod := m.mul(t.slope[seg], xQ16)
	prod = m.shr(prod, pwlFracBits)
	return m.add(prod, t.intercept[seg])
}

// EvalFloat evaluates the approximation in floating point — used only for
// plotting Fig. 3 and for the error-bound verification, never on the
// embedded path.
func (t *XLogXTable) EvalFloat(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x > 1 {
		x = 1
	}
	seg := int(x * PWLSegments)
	if seg >= PWLSegments {
		seg = PWLSegments - 1
	}
	return (float64(t.slope[seg])*x + float64(t.intercept[seg])) / pwlScale
}

// MaxRelativeError scans the approximation against the true function and
// returns the maximum relative error over [lo, 1] (the relative error is
// unbounded as x→0 where the function crosses zero, so the scan starts at
// lo; the paper's "<3 %" claim is over the plotted working range).
func (t *XLogXTable) MaxRelativeError(lo float64, samples int) float64 {
	worst := 0.0
	for i := 0; i <= samples; i++ {
		x := lo + (1-lo)*float64(i)/float64(samples)
		truth := x * math.Log(x)
		if x == 1 || truth == 0 {
			continue
		}
		rel := math.Abs((t.EvalFloat(x) - truth) / truth)
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

// MaxAbsoluteError scans the approximation against the true function and
// returns the maximum absolute error over [0, 1].
func (t *XLogXTable) MaxAbsoluteError(samples int) float64 {
	worst := 0.0
	for i := 0; i <= samples; i++ {
		x := float64(i) / float64(samples)
		truth := 0.0
		if x > 0 {
			truth = x * math.Log(x)
		}
		abs := math.Abs(t.EvalFloat(x) - truth)
		if abs > worst {
			worst = abs
		}
	}
	return worst
}

// Series returns (x, approx, exact) samples for rendering Fig. 3.
func (t *XLogXTable) Series(samples int) (xs, approx, exact []float64) {
	for i := 0; i <= samples; i++ {
		x := float64(i) / float64(samples)
		xs = append(xs, x)
		approx = append(approx, t.EvalFloat(x))
		if x > 0 {
			exact = append(exact, x*math.Log(x))
		} else {
			exact = append(exact, 0)
		}
	}
	return xs, approx, exact
}
