package faultinject

import (
	"fmt"
	"math/rand"

	"repro/internal/hwblock"
	"repro/internal/obs"
)

// RegCorruptor flips one random bit in scheduled register-file bus reads —
// the paper's probing/tampering concern applied to the counter
// transmission path instead of the bit stream. The schedule advances once
// per bus transaction, so re-reading the same address lands on a
// different schedule position: that is precisely why a double-read (or a
// doubled evaluation pass, see core's verified evaluation) detects the
// corruption — the two transactions are faulted independently and almost
// never agree on a corrupted value.
type RegCorruptor struct {
	rf       *hwblock.RegFile
	sched    *Schedule
	rng      *rand.Rand
	injected int
	obs      *obs.Registry
	obsCount *obs.Counter
}

// CorruptRegFile installs a corruptor on the register file at the given
// per-read fault rate and returns its handle. Detach restores fault-free
// reads.
func CorruptRegFile(rf *hwblock.RegFile, rate float64, seed int64) *RegCorruptor {
	c := &RegCorruptor{
		rf:    rf,
		sched: NewSchedule(rate, 1, seed),
		rng:   rand.New(rand.NewSource(seed ^ 0x5eed)),
	}
	rf.SetReadFault(c.corrupt)
	return c
}

// SetObs attaches an observability registry: every corrupted bus read is
// counted (kind "regcorrupt") and traced with the faulted bus address —
// the operator-side view of the probing/tampering surface.
func (c *RegCorruptor) SetObs(r *obs.Registry) {
	c.obs = r
	c.obsCount = r.Counter("trng_fault_injected_total",
		"faults injected, by injector kind", "kind", "regcorrupt")
}

func (c *RegCorruptor) corrupt(addr int, word uint16) uint16 {
	if !c.sched.Next() {
		return word
	}
	c.injected++
	c.obsCount.Inc()
	c.obs.Emit("fault.regcorrupt", -1, fmt.Sprintf("bus read at address %d corrupted", addr))
	return word ^ 1<<uint(c.rng.Intn(hwblock.WordBits))
}

// Injected reports how many bus reads were corrupted.
func (c *RegCorruptor) Injected() int { return c.injected }

// Detach uninstalls the corruptor from the register file.
func (c *RegCorruptor) Detach() { c.rf.SetReadFault(nil) }
