package faultinject

import (
	"math/rand"

	"repro/internal/hwblock"
)

// RegCorruptor flips one random bit in scheduled register-file bus reads —
// the paper's probing/tampering concern applied to the counter
// transmission path instead of the bit stream. The schedule advances once
// per bus transaction, so re-reading the same address lands on a
// different schedule position: that is precisely why a double-read (or a
// doubled evaluation pass, see core's verified evaluation) detects the
// corruption — the two transactions are faulted independently and almost
// never agree on a corrupted value.
type RegCorruptor struct {
	rf       *hwblock.RegFile
	sched    *Schedule
	rng      *rand.Rand
	injected int
}

// CorruptRegFile installs a corruptor on the register file at the given
// per-read fault rate and returns its handle. Detach restores fault-free
// reads.
func CorruptRegFile(rf *hwblock.RegFile, rate float64, seed int64) *RegCorruptor {
	c := &RegCorruptor{
		rf:    rf,
		sched: NewSchedule(rate, 1, seed),
		rng:   rand.New(rand.NewSource(seed ^ 0x5eed)),
	}
	rf.SetReadFault(c.corrupt)
	return c
}

func (c *RegCorruptor) corrupt(addr int, word uint16) uint16 {
	if !c.sched.Next() {
		return word
	}
	c.injected++
	return word ^ 1<<uint(c.rng.Intn(hwblock.WordBits))
}

// Injected reports how many bus reads were corrupted.
func (c *RegCorruptor) Injected() int { return c.injected }

// Detach uninstalls the corruptor from the register file.
func (c *RegCorruptor) Detach() { c.rf.SetReadFault(nil) }
