// Package faultinject provides composable, seeded fault injectors for the
// operational failure modes a deployed on-the-fly monitor must survive:
// transient read errors and stalls of the entropy source, bit-flip
// corruption on the TRNG→testing-block wire, and corrupted register-file
// readouts on the testing-block→microcontroller bus (the probing/tampering
// surface the paper's distributed-verdict design is built against).
//
// Every injector draws its fault positions from a Schedule — a seeded
// deterministic decider — so a run with a given seed injects exactly the
// same faults every time: the whole fault-handling path of core.Supervisor
// is reproducible bit for bit.
//
// The injectors wrap, rather than replace, the statistical source models
// of internal/trng: a Flaky(Biased) source is a biased TRNG with a flaky
// readout, and the monitor must both retry the flakiness and detect the
// bias.
//
//trnglint:deterministic
package faultinject

import "math/rand"

// Schedule is a seeded deterministic fault schedule: a stream of per-event
// decisions, each firing with probability Rate, and each firing extending
// over Burst consecutive events (a fault that fires mid-burst restarts the
// burst). Two Schedules with the same parameters and seed make identical
// decisions forever.
type Schedule struct {
	rng       *rand.Rand
	rate      float64
	burst     int
	remaining int
	fired     int
}

// NewSchedule returns a schedule firing with the given per-event rate; a
// firing lasts max(burst, 1) events.
func NewSchedule(rate float64, burst int, seed int64) *Schedule {
	if burst < 1 {
		burst = 1
	}
	return &Schedule{rng: rand.New(rand.NewSource(seed)), rate: rate, burst: burst}
}

// Next advances the schedule one event and reports whether a fault is
// active for it.
func (s *Schedule) Next() bool {
	if s.rng.Float64() < s.rate {
		s.remaining = s.burst
	}
	if s.remaining > 0 {
		s.remaining--
		s.fired++
		return true
	}
	return false
}

// Fired reports how many events have been faulted so far.
func (s *Schedule) Fired() int { return s.fired }
