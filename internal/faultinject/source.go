package faultinject

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/trng"
)

// ErrStalled is returned by a released Stall source: the stall window is
// over but the source is dead — a non-transient failure, so supervisors
// must fail over rather than retry.
var ErrStalled = errors.New("faultinject: source stalled")

// Flaky wraps a source with scheduled transient read failures: on a
// faulted event ReadBit returns an error wrapping trng.ErrTransient and
// consumes no bit from the inner source, so a retrying reader recovers the
// inner stream exactly. Unlike trng.Erratic's fixed period, the fault
// positions come from a seeded Schedule with a configurable rate and burst
// length — the model of EMI hits or a marginal readout flip-flop.
type Flaky struct {
	Inner    trng.Source
	sched    *Schedule
	injected int
}

// NewFlaky wraps inner with transient faults at the given per-read rate,
// each lasting burst consecutive reads.
func NewFlaky(inner trng.Source, rate float64, burst int, seed int64) *Flaky {
	return &Flaky{Inner: inner, sched: NewSchedule(rate, burst, seed)}
}

// Name implements trng.Source.
func (f *Flaky) Name() string { return "flaky(" + f.Inner.Name() + ")" }

// ReadBit implements trng.Source.
func (f *Flaky) ReadBit() (byte, error) {
	if f.sched.Next() {
		f.injected++
		return 0, fmt.Errorf("faultinject: injected read fault %d: %w", f.injected, trng.ErrTransient)
	}
	return f.Inner.ReadBit()
}

// Injected reports how many reads have been faulted.
func (f *Flaky) Injected() int { return f.injected }

// Stall wraps a source that dies mid-stream: the first StallAfter reads
// come from the inner source, then every ReadBit blocks until Release is
// called (and fails with ErrStalled afterwards). This is the fault a
// per-bit watchdog deadline exists for — the bit never arrives, so no
// retry budget helps; only a timeout does.
type Stall struct {
	Inner      trng.Source
	StallAfter int

	delivered int
	release   chan struct{}
	once      sync.Once
}

// NewStall returns a source that blocks forever after stallAfter delivered
// bits. Call Release to unblock stalled readers (they then observe
// ErrStalled).
func NewStall(inner trng.Source, stallAfter int) *Stall {
	return &Stall{Inner: inner, StallAfter: stallAfter, release: make(chan struct{})}
}

// Name implements trng.Source.
func (s *Stall) Name() string { return "stall(" + s.Inner.Name() + ")" }

// ReadBit implements trng.Source. Once the stall begins it blocks the
// calling goroutine until Release; a watchdog on the consumer side is the
// only way out.
func (s *Stall) ReadBit() (byte, error) {
	if s.delivered >= s.StallAfter {
		<-s.release
		return 0, ErrStalled
	}
	s.delivered++
	return s.Inner.ReadBit()
}

// Release unblocks all stalled (and future) reads; they fail with
// ErrStalled. It is safe to call more than once and from any goroutine.
func (s *Stall) Release() { s.once.Do(func() { close(s.release) }) }

// BitFlip wraps a source with scheduled silent corruption: faulted reads
// deliver the inner bit inverted, with no error — the wire between TRNG
// and testing block picking up noise. The monitor cannot see these faults
// operationally; only the statistical tests can, and only when the flip
// rate is high enough to disturb the statistics. That asymmetry is the
// point: BitFlip measures what the test battery does and does not catch.
type BitFlip struct {
	Inner   trng.Source
	sched   *Schedule
	flipped int
}

// NewBitFlip wraps inner, flipping bits at the given per-bit rate with the
// given burst length.
func NewBitFlip(inner trng.Source, rate float64, burst int, seed int64) *BitFlip {
	return &BitFlip{Inner: inner, sched: NewSchedule(rate, burst, seed)}
}

// Name implements trng.Source.
func (f *BitFlip) Name() string { return "bitflip(" + f.Inner.Name() + ")" }

// ReadBit implements trng.Source.
func (f *BitFlip) ReadBit() (byte, error) {
	b, err := f.Inner.ReadBit()
	if err != nil {
		return b, err
	}
	if f.sched.Next() {
		f.flipped++
		b ^= 1
	}
	return b, nil
}

// Flipped reports how many delivered bits were inverted.
func (f *BitFlip) Flipped() int { return f.flipped }
