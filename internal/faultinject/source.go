package faultinject

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/trng"
)

// ErrStalled is returned by a released Stall source: the stall window is
// over but the source is dead — a non-transient failure, so supervisors
// must fail over rather than retry.
var ErrStalled = errors.New("faultinject: source stalled")

// Flaky wraps a source with scheduled transient read failures: on a
// faulted event ReadBit returns an error wrapping trng.ErrTransient and
// consumes no bit from the inner source, so a retrying reader recovers the
// inner stream exactly. Unlike trng.Erratic's fixed period, the fault
// positions come from a seeded Schedule with a configurable rate and burst
// length — the model of EMI hits or a marginal readout flip-flop.
type Flaky struct {
	Inner    trng.Source
	sched    *Schedule
	injected int
	reads    int64
	obs      *obs.Registry
	obsCount *obs.Counter
}

// NewFlaky wraps inner with transient faults at the given per-read rate,
// each lasting burst consecutive reads.
func NewFlaky(inner trng.Source, rate float64, burst int, seed int64) *Flaky {
	return &Flaky{Inner: inner, sched: NewSchedule(rate, burst, seed)}
}

// Name implements trng.Source.
func (f *Flaky) Name() string { return "flaky(" + f.Inner.Name() + ")" }

// SetObs attaches an observability registry: every injected fault is
// counted (trng_fault_injected_total, kind "flaky") and traced as a
// fault.flaky event at its read position. The injection schedule itself is
// untouched — a run with a given seed injects exactly the same faults with
// or without a registry.
func (f *Flaky) SetObs(r *obs.Registry) {
	f.obs = r
	f.obsCount = r.Counter("trng_fault_injected_total",
		"faults injected, by injector kind", "kind", "flaky")
}

// ReadBit implements trng.Source.
func (f *Flaky) ReadBit() (byte, error) {
	f.reads++
	if f.sched.Next() {
		f.injected++
		f.obsCount.Inc()
		f.obs.Emit("fault.flaky", f.reads-1,
			fmt.Sprintf("injected transient read fault %d", f.injected))
		return 0, fmt.Errorf("faultinject: injected read fault %d: %w", f.injected, trng.ErrTransient)
	}
	return f.Inner.ReadBit()
}

// Injected reports how many reads have been faulted.
func (f *Flaky) Injected() int { return f.injected }

// Stall wraps a source that dies mid-stream: the first StallAfter reads
// come from the inner source, then every ReadBit blocks until Release is
// called (and fails with ErrStalled afterwards). This is the fault a
// per-bit watchdog deadline exists for — the bit never arrives, so no
// retry budget helps; only a timeout does.
type Stall struct {
	Inner      trng.Source
	StallAfter int

	delivered int
	release   chan struct{}
	once      sync.Once
	obs       *obs.Registry
	obsOnce   sync.Once // the stall onset is traced exactly once
}

// NewStall returns a source that blocks forever after stallAfter delivered
// bits. Call Release to unblock stalled readers (they then observe
// ErrStalled).
func NewStall(inner trng.Source, stallAfter int) *Stall {
	return &Stall{Inner: inner, StallAfter: stallAfter, release: make(chan struct{})}
}

// Name implements trng.Source.
func (s *Stall) Name() string { return "stall(" + s.Inner.Name() + ")" }

// SetObs attaches an observability registry; the stall onset is counted
// (kind "stall") and traced once, at the moment the first read blocks.
func (s *Stall) SetObs(r *obs.Registry) { s.obs = r }

// ReadBit implements trng.Source. Once the stall begins it blocks the
// calling goroutine until Release; a watchdog on the consumer side is the
// only way out.
func (s *Stall) ReadBit() (byte, error) {
	if s.delivered >= s.StallAfter {
		s.obsOnce.Do(func() {
			s.obs.Counter("trng_fault_injected_total",
				"faults injected, by injector kind", "kind", "stall").Inc()
			s.obs.Emit("fault.stall", int64(s.delivered),
				fmt.Sprintf("source stalled after %d delivered bits", s.delivered))
		})
		<-s.release
		return 0, ErrStalled
	}
	s.delivered++
	return s.Inner.ReadBit()
}

// Release unblocks all stalled (and future) reads; they fail with
// ErrStalled. It is safe to call more than once and from any goroutine.
func (s *Stall) Release() { s.once.Do(func() { close(s.release) }) }

// BitFlip wraps a source with scheduled silent corruption: faulted reads
// deliver the inner bit inverted, with no error — the wire between TRNG
// and testing block picking up noise. The monitor cannot see these faults
// operationally; only the statistical tests can, and only when the flip
// rate is high enough to disturb the statistics. That asymmetry is the
// point: BitFlip measures what the test battery does and does not catch.
type BitFlip struct {
	Inner    trng.Source
	sched    *Schedule
	flipped  int
	reads    int64
	obs      *obs.Registry
	obsCount *obs.Counter
}

// NewBitFlip wraps inner, flipping bits at the given per-bit rate with the
// given burst length.
func NewBitFlip(inner trng.Source, rate float64, burst int, seed int64) *BitFlip {
	return &BitFlip{Inner: inner, sched: NewSchedule(rate, burst, seed)}
}

// Name implements trng.Source.
func (f *BitFlip) Name() string { return "bitflip(" + f.Inner.Name() + ")" }

// SetObs attaches an observability registry: every silent flip is counted
// (kind "bitflip") and traced at its bit position — the only place a
// silent corruption is visible at all, which is exactly what makes the
// trace useful when correlating a statistical failure with its cause.
func (f *BitFlip) SetObs(r *obs.Registry) {
	f.obs = r
	f.obsCount = r.Counter("trng_fault_injected_total",
		"faults injected, by injector kind", "kind", "bitflip")
}

// ReadBit implements trng.Source.
func (f *BitFlip) ReadBit() (byte, error) {
	b, err := f.Inner.ReadBit()
	if err != nil {
		return b, err
	}
	f.reads++
	if f.sched.Next() {
		f.flipped++
		f.obsCount.Inc()
		f.obs.Emit("fault.bitflip", f.reads-1, "delivered bit inverted")
		b ^= 1
	}
	return b, nil
}

// Flipped reports how many delivered bits were inverted.
func (f *BitFlip) Flipped() int { return f.flipped }
