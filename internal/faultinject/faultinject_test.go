package faultinject

import (
	"errors"
	"testing"
	"time"

	"repro/internal/hwblock"
	"repro/internal/trng"
)

func TestScheduleIsDeterministic(t *testing.T) {
	a := NewSchedule(0.1, 3, 42)
	b := NewSchedule(0.1, 3, 42)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("schedules diverged at event %d", i)
		}
	}
	if a.Fired() != b.Fired() {
		t.Fatalf("fired counts diverged: %d vs %d", a.Fired(), b.Fired())
	}
	if a.Fired() == 0 {
		t.Error("rate-0.1 schedule never fired in 10000 events")
	}
}

func TestScheduleBurstLength(t *testing.T) {
	// rate 0 after a forced fire: emulate by rate 1 for one event. Use a
	// tiny rate and scan for an isolated burst instead.
	s := NewSchedule(0.001, 5, 7)
	run := 0
	sawBurst := false
	for i := 0; i < 100000; i++ {
		if s.Next() {
			run++
		} else {
			if run >= 5 {
				sawBurst = true
			}
			run = 0
		}
	}
	if !sawBurst {
		t.Error("no burst of the configured length observed")
	}
}

func TestFlakyRetryRecoversInnerStream(t *testing.T) {
	want := trng.Read(trng.NewIdeal(3), 500)
	f := NewFlaky(trng.NewIdeal(3), 0.05, 2, 99)
	var got []byte
	for len(got) < 500 {
		b, err := f.ReadBit()
		if err != nil {
			if !errors.Is(err, trng.ErrTransient) {
				t.Fatalf("injected fault is not transient: %v", err)
			}
			continue
		}
		got = append(got, b)
	}
	if f.Injected() == 0 {
		t.Fatal("no faults injected at rate 0.05 over 500+ reads")
	}
	for i := range got {
		if got[i] != want.Bit(i) {
			t.Fatalf("bit %d: retried stream diverged from inner stream", i)
		}
	}
}

func TestFlakyIsDeterministic(t *testing.T) {
	errsAt := func() []int {
		f := NewFlaky(trng.NewIdeal(1), 0.1, 1, 5)
		var at []int
		for i := 0; i < 1000; i++ {
			if _, err := f.ReadBit(); err != nil {
				at = append(at, i)
			}
		}
		return at
	}
	a, b := errsAt(), errsAt()
	if len(a) != len(b) {
		t.Fatalf("fault counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d at call %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStallBlocksThenReleases(t *testing.T) {
	s := NewStall(trng.NewIdeal(1), 3)
	for i := 0; i < 3; i++ {
		if _, err := s.ReadBit(); err != nil {
			t.Fatalf("read %d before stall: %v", i, err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.ReadBit()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStalled) {
			t.Errorf("released read error = %v, want ErrStalled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("release did not unblock the stalled read")
	}
	// Post-release reads fail immediately.
	if _, err := s.ReadBit(); !errors.Is(err, ErrStalled) {
		t.Errorf("post-release read error = %v, want ErrStalled", err)
	}
}

func TestBitFlipCorruptsSilently(t *testing.T) {
	clean := trng.Read(trng.NewIdeal(9), 2000)
	f := NewBitFlip(trng.NewIdeal(9), 0.01, 1, 8)
	diffs := 0
	for i := 0; i < 2000; i++ {
		b, err := f.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: unexpected error %v", i, err)
		}
		if b != clean.Bit(i) {
			diffs++
		}
	}
	if diffs != f.Flipped() {
		t.Errorf("observed %d differences, injector reports %d flips", diffs, f.Flipped())
	}
	if diffs == 0 {
		t.Error("no bits flipped at rate 0.01 over 2000 bits")
	}
}

func TestRegCorruptorDoubleReadDisagrees(t *testing.T) {
	rf := hwblock.NewRegFile()
	rf.Add("C", 0, 16, func() uint64 { return 0xABCD })
	c := CorruptRegFile(rf, 1.0, 3) // every read corrupted
	defer c.Detach()
	// With independent single-bit flips per transaction, two reads of the
	// same address agree only if both flips hit the same bit — detectable
	// disagreement is overwhelmingly likely over a few tries.
	agree := 0
	for i := 0; i < 16; i++ {
		if rf.ReadWord(0) == rf.ReadWord(0) {
			agree++
		}
	}
	if agree == 16 {
		t.Error("corrupted double reads always agreed")
	}
	if c.Injected() != 32 {
		t.Errorf("Injected = %d, want 32", c.Injected())
	}
}

func TestRegCorruptorDetach(t *testing.T) {
	rf := hwblock.NewRegFile()
	rf.Add("C", 0, 16, func() uint64 { return 0x1234 })
	c := CorruptRegFile(rf, 1.0, 3)
	if rf.ReadWord(0) == 0x1234 {
		t.Error("rate-1.0 corruptor left a read clean")
	}
	c.Detach()
	if got := rf.ReadWord(0); got != 0x1234 {
		t.Errorf("read after Detach = %#x", got)
	}
}

func TestInjectorNames(t *testing.T) {
	inner := trng.NewIdeal(1)
	cases := []struct {
		src  trng.Source
		want string
	}{
		{NewFlaky(inner, 0.1, 1, 1), "flaky(ideal)"},
		{NewStall(inner, 10), "stall(ideal)"},
		{NewBitFlip(inner, 0.1, 1, 1), "bitflip(ideal)"},
	}
	for _, c := range cases {
		if got := c.src.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}
