// Package repro reproduces "Embedded HW/SW Platform for On-the-Fly Testing
// of True Random Number Generators" (Yang, Rožić, Mentens, Dehaene,
// Verbauwhede — DATE 2015) as a Go library.
//
// The public surface is a thin facade over the internal packages:
//
//   - NewMonitor / Monitor: the on-the-fly testing platform (internal/core)
//   - NewSupervisor / Supervisor: the operational fault-handling layer —
//     retry, watchdog, quarantine, failover (internal/core)
//   - Designs / NewDesign / NewCustomDesign: the hardware testing-block
//     configurations of the paper's Table III (internal/hwblock)
//   - The re-exported source models of internal/trng
//   - ReferenceSuite: the full 15-test NIST SP800-22 reference suite
//     (internal/nist)
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for the measured-vs-published results.
package repro

import (
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/hwblock"
	"repro/internal/nist"
	"repro/internal/online"
	"repro/internal/sweval"
	"repro/internal/trng"
)

// Monitor is the on-the-fly TRNG health monitor (see internal/core).
type Monitor = core.Monitor

// SequenceReport is the outcome of one completed test sequence.
type SequenceReport = core.SequenceReport

// Design describes one hardware testing-block configuration.
type Design = hwblock.Config

// Variant is a feature level (Light, Medium, High).
type Variant = hwblock.Variant

// The paper's feature levels.
const (
	Light  = hwblock.Light
	Medium = hwblock.Medium
	High   = hwblock.High
)

// Source is a bit-producing entropy source model.
type Source = trng.Source

// DefaultAlpha is the NIST-recommended default level of significance.
const DefaultAlpha = nist.DefaultAlpha

// NewDesign returns one of the paper's eight design points (n in
// {128, 65536, 1048576} × {Light, Medium, High}; n=128 has no High).
func NewDesign(n int, v Variant) (Design, error) { return hwblock.NewConfig(n, v) }

// NewCustomDesign builds a design with a caller-chosen power-of-two
// sequence length and test subset — the paper's future-work extension.
func NewCustomDesign(name string, n int, tests []int) (Design, error) {
	return hwblock.NewCustomConfig(name, n, tests)
}

// Designs returns all eight published design points.
func Designs() []Design { return hwblock.AllConfigs() }

// NewMonitor builds an on-the-fly monitor for a design at level of
// significance alpha.
func NewMonitor(d Design, alpha float64, opts ...sweval.Option) (*Monitor, error) {
	return core.NewMonitor(d, alpha, opts...)
}

// Supervisor wraps a Monitor with retry, watchdog, quarantine and
// failover (see internal/core).
type Supervisor = core.Supervisor

// SupervisorConfig tunes the supervision layer.
type SupervisorConfig = core.SupervisorConfig

// SupervisorReport is the outcome of one supervised run.
type SupervisorReport = core.SupervisorReport

// OnlineConfig tunes the streaming anomaly tracker a supervisor runs
// when SupervisorConfig.Online is set; see internal/online.
type OnlineConfig = online.Config

// OnlineTracker is the sliding-window anomaly detector itself, for
// standalone use over any bit stream.
type OnlineTracker = online.Tracker

// NewOnlineTracker builds a streaming anomaly tracker for a design.
func NewOnlineTracker(d Design, cfg OnlineConfig) (*OnlineTracker, error) {
	return online.New(d, cfg)
}

// NewSupervisor supervises a monitor over a primary source with an
// optional (nilable) standby for failover.
func NewSupervisor(m *Monitor, primary, standby Source, cfg SupervisorConfig) *Supervisor {
	return core.NewSupervisor(m, primary, standby, cfg)
}

// NewIdealSource returns an unbiased, independent bit source.
func NewIdealSource(seed int64) Source { return trng.NewIdeal(seed) }

// NewRingOscillatorSource returns the elementary ring-oscillator TRNG
// model (ratio ≈ 100.37 and jitterRMS ≥ 0.3 are healthy).
func NewRingOscillatorSource(ratio, jitterRMS float64, seed int64) *trng.RingOscillator {
	return trng.NewRingOscillator(ratio, jitterRMS, seed)
}

// ReferenceSuite returns the full 15-test NIST SP800-22 reference software
// suite.
func ReferenceSuite() []nist.Test { return nist.Suite() }

// ReadBits drains n bits from a source into a packed sequence.
func ReadBits(src Source, n int) *bitstream.Sequence { return trng.Read(src, n) }
