// Command regmapdoc generates REGISTERS.md, the memory-mapped register
// reference of all eight design points, from the live hardware definitions
// in internal/hwblock. The committed copy is kept in sync by `make docs`;
// CI fails when the file drifts from the code.
//
// Usage:
//
//	regmapdoc               # rewrite REGISTERS.md in the current directory
//	regmapdoc -o path.md    # write elsewhere
//	regmapdoc -o -          # write to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tables"
)

func main() {
	out := flag.String("o", "REGISTERS.md", "output file ('-' for stdout)")
	flag.Parse()

	doc, err := tables.RegisterMap()
	if err != nil {
		fmt.Fprintln(os.Stderr, "regmapdoc:", err)
		os.Exit(2)
	}
	if *out == "-" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "regmapdoc:", err)
		os.Exit(2)
	}
}
