package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// ev builds one test2json output event line, escaping Output exactly as
// test2json frames it.
func ev(pkg, out string) string {
	r := strings.NewReplacer("\\", `\\`, "\"", `\"`, "\n", `\n`, "\t", `\t`)
	return `{"Action":"output","Package":"` + pkg + `","Output":"` + r.Replace(out) + `"}`
}

// stream builds a test2json fixture where the benchmark result line is
// split across two output events (name flush, then timing), exactly as
// `go test -json` emits it.
func stream(pkg string, ns float64, bop, allocs int) string {
	timing := "  123456\t" + strconv.FormatFloat(ns, 'f', -1, 64) + " ns/op\t  44.04 MB/s\t       " +
		strconv.Itoa(bop) + " B/op\t       " + strconv.Itoa(allocs) + " allocs/op\n"
	lines := []string{
		`{"Action":"start","Package":"` + pkg + `"}`,
		ev(pkg, "goos: linux\n"),
		ev(pkg, "BenchmarkIngest\n"),
		ev(pkg, "BenchmarkIngest             \t"),
		ev(pkg, timing),
		ev(pkg, "PASS\n"),
		`{"Action":"pass","Package":"` + pkg + `"}`,
	}
	return strings.Join(lines, "\n") + "\n"
}

func TestParseSplitLine(t *testing.T) {
	in := stream("repro/internal/fleet", 163.8, 1, 0)
	res, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := res["repro/internal/fleet:BenchmarkIngest"]
	if !ok {
		t.Fatalf("benchmark not found; got %v", res)
	}
	if r.iters != 123456 {
		t.Fatalf("iters = %d, want 123456", r.iters)
	}
	if got := r.metrics["ns/op"]; got != 163.8 {
		t.Fatalf("ns/op = %v, want 163.8", got)
	}
	if got := r.metrics["MB/s"]; got != 44.04 {
		t.Fatalf("MB/s = %v, want 44.04", got)
	}
	if got, ok := r.metrics["allocs/op"]; !ok || got != 0 {
		t.Fatalf("allocs/op = %v (present=%v), want 0", got, ok)
	}
}

func TestParseRejectsNonBenchLines(t *testing.T) {
	in := strings.Join([]string{
		ev("p", "=== RUN   BenchmarkX\n"),
		ev("p", "BenchmarkX\n"),
		ev("p", "ok  \trepro\t1.2s\n"),
		ev("p", "--- PASS: TestY (0.00s)\n"),
	}, "\n")
	res, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("expected no results, got %v", res)
	}
}

func TestRunFailOver(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldP, []byte(stream("repro/internal/fleet", 100, 1, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newP, []byte(stream("repro/internal/fleet", 130, 1, 0)), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	code, err := run(oldP, newP, 50, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("30%% regression under a 50%% threshold should pass; output:\n%s", out.String())
	}

	out.Reset()
	code, err = run(oldP, newP, 20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatalf("30%% regression over a 20%% threshold should fail; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("failing diff should mark the regressed row; output:\n%s", out.String())
	}
}

func TestRunImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldP, []byte(stream("repro/internal/fleet", 160, 1, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newP, []byte(stream("repro/internal/fleet", 43, 1, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(oldP, newP, 10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("a speedup must pass any threshold; output:\n%s", out.String())
	}
}

func TestRunDisjointBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldP, []byte(stream("repro/internal/fleet", 100, 1, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newP, []byte(stream("repro/internal/hwslice", 30, 0, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(oldP, newP, 10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("disjoint benchmark sets must not fail the gate; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "only in") {
		t.Fatalf("disjoint benchmarks should be listed; output:\n%s", out.String())
	}
}

func TestRealArchiveRoundTrip(t *testing.T) {
	// The committed archive, when present, must parse and self-diff clean:
	// identical files have zero delta and exit 0 at any threshold.
	path := filepath.Join("..", "..", "BENCH_latest.json")
	if _, err := os.Stat(path); err != nil {
		t.Skip("no committed BENCH_latest.json")
	}
	var out strings.Builder
	code, err := run(path, path, 1, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("self-diff must pass; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ns/op") {
		t.Fatalf("self-diff should report rows; output:\n%s", out.String())
	}
}

// TestRunZeroAllocHardFailure pins the always-on allocation gate: a
// benchmark archived at 0 allocs/op that now allocates fails the run even
// when the ns/op threshold is generous or disabled entirely.
func TestRunZeroAllocHardFailure(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldP, []byte(stream("repro/internal/fleet", 100, 0, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newP, []byte(stream("repro/internal/fleet", 100, 16, 1)), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, failOver := range []float64{0, 1000} {
		var out strings.Builder
		code, err := run(oldP, newP, failOver, &out)
		if err != nil {
			t.Fatal(err)
		}
		if code == 0 {
			t.Fatalf("0 -> 1 allocs/op must fail at -fail-over %v; output:\n%s", failOver, out.String())
		}
		if !strings.Contains(out.String(), "was 0 allocs/op") {
			t.Fatalf("failing diff should mark the broken zero-alloc row; output:\n%s", out.String())
		}
	}

	// A nonzero baseline drifting is reported but never a hard failure.
	if err := os.WriteFile(oldP, []byte(stream("repro/internal/fleet", 100, 16, 2)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newP, []byte(stream("repro/internal/fleet", 100, 24, 3)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(oldP, newP, 0, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("2 -> 3 allocs/op is not a zero-alloc break; output:\n%s", out.String())
	}
}
