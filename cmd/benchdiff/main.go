// Command benchdiff compares two archived benchmark runs and reports the
// per-benchmark deltas. The inputs are the BENCH_*.json files `make bench`
// produces: test2json framing (one JSON event per line) around the standard
// `go test -bench` output. benchdiff reassembles each package's output
// stream — a single benchmark result line is routinely split across several
// output events — and extracts every `Benchmark...` result line.
//
// For each benchmark present in both files it prints the old and new value
// and the percentage delta for ns/op, plus B/op and allocs/op deltas when
// both runs recorded them. Benchmarks present in only one file are listed
// but never affect the exit status.
//
// With -fail-over P, benchdiff exits non-zero when any benchmark's ns/op
// regressed by more than P percent — the repository's benchmark-trajectory
// gate. P should be generous (the CI machines are noisy, and a 1-CPU
// container doubles the variance); the gate exists to catch order-of-
// magnitude regressions in the ingest fast paths, not 5% drift.
//
// The zero-alloc gate is separate and always on: a benchmark whose
// archived allocs/op is 0 that now reports any allocations fails the run
// regardless of -fail-over (even -fail-over 0, which only disables the
// ns/op gate). Allocation counts are deterministic — unlike ns/op there
// is no noise to forgive — and 0 allocs/op on the ingest fast paths is a
// pinned property the perflint analyzers prove statically; this is the
// dynamic half of that contract.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's framing benchdiff needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one parsed benchmark line: the iteration count and every
// reported metric keyed by its unit ("ns/op", "B/op", "allocs/op", and any
// custom -benchmem or ReportMetric units).
type result struct {
	iters   int64
	metrics map[string]float64
}

// parseBench reads a test2json stream and returns every benchmark result,
// keyed "package:BenchmarkName".
func parseBench(r io.Reader) (map[string]result, error) {
	// Reassemble each package's textual output in event order; benchmark
	// result lines are split across output events (the name flushes before
	// the timing), so per-line parsing of events would miss most of them.
	byPkg := make(map[string]*strings.Builder)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("benchdiff: not a test2json stream: %w", err)
		}
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		b := byPkg[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			byPkg[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make(map[string]result)
	for _, pkg := range order {
		for _, line := range strings.Split(byPkg[pkg].String(), "\n") {
			name, res, ok := parseLine(line)
			if !ok {
				continue
			}
			out[pkg+":"+name] = res
		}
	}
	return out, nil
}

// parseLine parses one `BenchmarkX  N  V unit  V unit ...` result line.
// Returns ok=false for anything else (=== RUN markers, pass/fail lines,
// the bare benchmark-name flush line).
func parseLine(line string) (string, result, bool) {
	fields := strings.Split(line, "\t")
	if len(fields) < 3 {
		return "", result{}, false
	}
	name := strings.TrimSpace(fields[0])
	if !strings.HasPrefix(name, "Benchmark") || strings.ContainsAny(name, " :") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
	if err != nil {
		return "", result{}, false
	}
	res := result{iters: iters, metrics: make(map[string]float64)}
	for _, f := range fields[2:] {
		parts := strings.Fields(f)
		if len(parts) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			continue
		}
		res.metrics[parts[1]] = v
	}
	if len(res.metrics) == 0 {
		return "", result{}, false
	}
	return name, res, true
}

// row is one comparison line of the report.
type row struct {
	name     string
	old, new result
}

func run(oldPath, newPath string, failOver float64, w io.Writer) (int, error) {
	oldF, err := os.Open(oldPath)
	if err != nil {
		return 1, err
	}
	defer oldF.Close()
	newF, err := os.Open(newPath)
	if err != nil {
		return 1, err
	}
	defer newF.Close()
	oldR, err := parseBench(oldF)
	if err != nil {
		return 1, fmt.Errorf("%s: %w", oldPath, err)
	}
	newR, err := parseBench(newF)
	if err != nil {
		return 1, fmt.Errorf("%s: %w", newPath, err)
	}
	if len(oldR) == 0 {
		return 1, fmt.Errorf("%s: no benchmark results found", oldPath)
	}
	if len(newR) == 0 {
		return 1, fmt.Errorf("%s: no benchmark results found", newPath)
	}

	var rows []row
	var onlyOld, onlyNew []string
	for k, o := range oldR {
		if n, ok := newR[k]; ok {
			rows = append(rows, row{name: k, old: o, new: n})
		} else {
			onlyOld = append(onlyOld, k)
		}
	}
	for k := range newR {
		if _, ok := oldR[k]; !ok {
			onlyNew = append(onlyNew, k)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)

	tw := bufio.NewWriter(w)
	defer tw.Flush()
	fmt.Fprintf(tw, "%-64s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	exit := 0
	zeroAllocBroken := false
	for _, r := range rows {
		oldNs, okO := r.old.metrics["ns/op"]
		newNs, okN := r.new.metrics["ns/op"]
		if !okO || !okN {
			continue
		}
		d := 0.0
		if oldNs > 0 {
			d = (newNs - oldNs) / oldNs * 100
		}
		mark := ""
		if failOver > 0 && d > failOver {
			mark = "  REGRESSED"
			exit = 1
		}
		fmt.Fprintf(tw, "%-64s %14.2f %14.2f %+8.1f%%%s\n", r.name, oldNs, newNs, d, mark)
		for _, unit := range []string{"B/op", "allocs/op"} {
			o, okO := r.old.metrics[unit]
			n, okN := r.new.metrics[unit]
			if !okO || !okN || (o == n) {
				continue
			}
			mark := ""
			if unit == "allocs/op" && o == 0 && n > 0 {
				// A zero-alloc benchmark started allocating: hard failure,
				// independent of the ns/op threshold.
				mark = "  REGRESSED (was 0 allocs/op)"
				zeroAllocBroken = true
				exit = 1
			}
			fmt.Fprintf(tw, "%-64s %14.0f %14.0f  (%s)%s\n", "", o, n, unit, mark)
		}
	}
	for _, k := range onlyOld {
		fmt.Fprintf(tw, "%-64s only in %s\n", k, oldPath)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(tw, "%-64s only in %s\n", k, newPath)
	}
	if zeroAllocBroken {
		fmt.Fprintf(tw, "\nbenchdiff: zero-alloc benchmark now allocates (hard failure, ignores -fail-over)\n")
	}
	if exit != 0 && !zeroAllocBroken {
		fmt.Fprintf(tw, "\nbenchdiff: ns/op regression over %.0f%% threshold\n", failOver)
	}
	return exit, nil
}

func main() {
	failOver := flag.Float64("fail-over", 0, "exit non-zero when any ns/op regresses by more than this percentage (0 disables the ns/op gate; the zero-alloc gate is always on)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-fail-over pct] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	code, err := run(flag.Arg(0), flag.Arg(1), *failOver, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	os.Exit(code)
}
