package main

import (
	"bytes"
	"strings"
	"testing"
)

func testOptions() options {
	return options{
		n: 128, variant: "medium", family: "all", format: "table",
		trials: 3, onset: 512, maxBits: 1 << 15, seed: 1,
	}
}

// TestStuckSweepDetectsEveryTrial pins the harness end to end: a stuck-at
// defect is the easiest detection there is, so every trial must detect,
// with a positive latency.
func TestStuckSweepDetectsEveryTrial(t *testing.T) {
	var out, errb bytes.Buffer
	o := testOptions()
	o.family = "stuck"
	o.stdout, o.stderr = &out, &errb
	if code := run(o); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "stuck") || !strings.Contains(got, "3/3") {
		t.Fatalf("sweep output missing full detection:\n%s", got)
	}
	if strings.Contains(got, "level=0") == false || strings.Contains(got, "level=1") == false {
		t.Fatalf("missing stuck severities:\n%s", got)
	}
}

// TestIdealBaselineNeverDetects pins the false-alarm baseline at the test
// horizon: the ideal family must report 0 detections.
func TestIdealBaselineNeverDetects(t *testing.T) {
	var out, errb bytes.Buffer
	o := testOptions()
	o.family = "ideal"
	o.stdout, o.stderr = &out, &errb
	if code := run(o); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "0/3") {
		t.Fatalf("ideal baseline raised a false alarm:\n%s", out.String())
	}
}

// TestCSVFormat pins the machine-readable output contract.
func TestCSVFormat(t *testing.T) {
	var out, errb bytes.Buffer
	o := testOptions()
	o.family = "stuck"
	o.format = "csv"
	o.stdout, o.stderr = &out, &errb
	if code := run(o); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "family,severity,trials,detected,median_ttd_bits,mean_ttd_bits,min_ttd_bits,max_ttd_bits" {
		t.Fatalf("csv header changed: %s", lines[0])
	}
	if len(lines) != 3 { // header + two stuck severities
		t.Fatalf("want 3 csv lines, got %d:\n%s", len(lines), out.String())
	}
}

// TestDeterministicOutput proves a sweep is a pure function of its flags.
func TestDeterministicOutput(t *testing.T) {
	runOnce := func() string {
		var out, errb bytes.Buffer
		o := testOptions()
		o.family = "stuck"
		o.stdout, o.stderr = &out, &errb
		if code := run(o); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("sweep not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestBadFlags pins the configuration-error exit code.
func TestBadFlags(t *testing.T) {
	for name, mutate := range map[string]func(*options){
		"family":    func(o *options) { o.family = "gremlin" },
		"format":    func(o *options) { o.format = "xml" },
		"variant":   func(o *options) { o.variant = "turbo" },
		"window":    func(o *options) { o.window = 100 },
		"trials":    func(o *options) { o.trials = 0 },
		"horizon":   func(o *options) { o.maxBits = 100; o.onset = 200 },
		"design":    func(o *options) { o.n = 100 },
		"threshold": func(o *options) { o.threshold = -1 },
	} {
		var out, errb bytes.Buffer
		o := testOptions()
		mutate(&o)
		o.stdout, o.stderr = &out, &errb
		if code := run(o); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, errb.String())
		}
	}
}
