// Command ttd measures the online anomaly detector's time-to-detect
// across the TRNG defect zoo: for each defect family and severity it runs
// repeated trials in which a healthy source degrades at a known onset bit,
// feeds the stream through an internal/online tracker, and reports how
// many bits past the onset the tracker's confirmation latch fired.
//
// Usage:
//
//	ttd -n 128 -variant medium -trials 25 -onset 4096
//	ttd -family bias -trials 50 -window 1024 -format csv > bias.csv
//	ttd -family ideal -max-bits 1048576       # false-alarm baseline
//
// Every trial is deterministic in (-seed, trial index), so a published
// table is reproducible bit for bit. The ideal family never degrades: any
// detection it reports is a false alarm, and its "detected" column is the
// empirical false-alarm rate at the configured -max-bits horizon.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/hwblock"
	"repro/internal/online"
	"repro/internal/trng"
)

// options carries every flag of the CLI; main parses, run executes — the
// split keeps the whole sweep testable in-process.
type options struct {
	n         int
	variant   string
	family    string
	window    int
	halfLife  int
	threshold float64
	confirm   int
	trials    int
	onset     int
	maxBits   int
	seed      int64
	format    string

	stdout io.Writer
	stderr io.Writer
}

func main() {
	o := options{stdout: os.Stdout, stderr: os.Stderr}
	flag.IntVar(&o.n, "n", 128, "design sequence length (128, 65536 or 1048576)")
	flag.StringVar(&o.variant, "variant", "medium", "design variant: light, medium or high")
	flag.StringVar(&o.family, "family", "all", "defect family: all, ideal, stuck, bias, markov, lockin, drift")
	flag.IntVar(&o.window, "window", 0, "tracker window in bits, a multiple of 64 (0 = the design's sequence length)")
	flag.IntVar(&o.halfLife, "half-life", 0, "score half-life in bits (0 = tracker default, 4x window)")
	flag.Float64Var(&o.threshold, "threshold", 0, "anomaly-score alarm threshold (0 = tracker default)")
	flag.IntVar(&o.confirm, "confirm", 0, "consecutive over-threshold commits before latching (0 = tracker default)")
	flag.IntVar(&o.trials, "trials", 25, "independent trials per severity point")
	flag.IntVar(&o.onset, "onset", 4096, "bit index at which the defect switches in")
	flag.IntVar(&o.maxBits, "max-bits", 1<<18, "per-trial bit budget; an undetected trial is censored at this horizon")
	flag.Int64Var(&o.seed, "seed", 1, "base seed; trial t of point i uses seed+1000*i+t")
	flag.StringVar(&o.format, "format", "table", "output format: table or csv")
	flag.Parse()
	os.Exit(run(o))
}

// sweepPoint is one (family, severity) cell of the sweep: makeSource
// builds the trial's full stream — healthy before the onset, defective
// after — from a trial seed. premixed points (drift, ideal) embed their
// own timeline and use onset 0 for the latency accounting.
type sweepPoint struct {
	family     string
	severity   string
	premixed   bool
	makeSource func(seed int64, onset int) trng.Source
}

// sweep enumerates the defect zoo. Severities are ordered hardest
// (subtlest defect) to easiest within each family, so each family's rows
// read as one time-to-detect curve.
func sweep() []sweepPoint {
	var pts []sweepPoint
	add := func(family, severity string, premixed bool, mk func(seed int64, onset int) trng.Source) {
		pts = append(pts, sweepPoint{family, severity, premixed, mk})
	}
	switchAt := func(defect func(seed int64) trng.Source) func(int64, int) trng.Source {
		return func(seed int64, onset int) trng.Source {
			return trng.NewSwitchAt(trng.NewIdeal(seed), defect(seed+500_000), onset)
		}
	}
	add("ideal", "-", true, func(seed int64, _ int) trng.Source {
		return trng.NewIdeal(seed)
	})
	for _, p := range []float64{0.52, 0.55, 0.58, 0.62, 0.70, 0.80} {
		p := p
		add("bias", fmt.Sprintf("p=%.2f", p), false, switchAt(func(seed int64) trng.Source {
			return trng.NewBiased(p, seed)
		}))
	}
	for _, stick := range []float64{0.55, 0.60, 0.65, 0.70, 0.80, 0.90} {
		stick := stick
		add("markov", fmt.Sprintf("stick=%.2f", stick), false, switchAt(func(seed int64) trng.Source {
			return trng.NewMarkov(stick, seed)
		}))
	}
	for _, residual := range []float64{0.15, 0.10, 0.05, 0.02, 0.005} {
		residual := residual
		add("lockin", fmt.Sprintf("jitter=%.3f", residual), false, func(seed int64, onset int) trng.Source {
			healthy := trng.NewRingOscillator(100.37, 0.5, seed)
			locked := trng.NewRingOscillator(100.37, 0.5, seed+500_000)
			locked.Lock(residual)
			return trng.NewSwitchAt(healthy, locked, onset)
		})
	}
	for _, endP := range []float64{0.60, 0.70, 0.80, 0.90} {
		endP := endP
		add("drift", fmt.Sprintf("endP=%.2f", endP), true, func(seed int64, _ int) trng.Source {
			return trng.NewDrift(0.5, endP, 1<<15, seed)
		})
	}
	add("stuck", "level=0", false, switchAt(func(int64) trng.Source {
		return trng.NewStuckAt(0)
	}))
	add("stuck", "level=1", false, switchAt(func(int64) trng.Source {
		return trng.NewStuckAt(1)
	}))
	return pts
}

// result aggregates one sweep point's trials.
type result struct {
	point     sweepPoint
	trials    int
	detected  int
	latencies []int64 // bits past the onset, detected trials only
}

func (r *result) stats() (median, mean, min, max int64) {
	if len(r.latencies) == 0 {
		return -1, -1, -1, -1
	}
	sorted := append([]int64(nil), r.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	median = sorted[n/2]
	if n%2 == 0 {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	return median, sum / int64(n), sorted[0], sorted[n-1]
}

// run executes the sweep and returns the process exit code: 0 on success,
// 2 on a configuration error.
func run(o options) int {
	fatal := func(err error) int {
		fmt.Fprintln(o.stderr, "ttd:", err)
		return 2
	}
	v, err := parseVariant(o.variant)
	if err != nil {
		return fatal(err)
	}
	design, err := hwblock.NewConfig(o.n, v)
	if err != nil {
		return fatal(err)
	}
	ocfg := online.Config{
		Window:       o.window,
		HalfLifeBits: o.halfLife,
		Threshold:    o.threshold,
		Confirm:      o.confirm,
	}
	// Validate the tracker config once, before the sweep spends any time.
	tracker, err := online.New(design, ocfg)
	if err != nil {
		return fatal(err)
	}
	if o.trials < 1 {
		return fatal(fmt.Errorf("-trials %d: need at least 1", o.trials))
	}
	if o.onset < 0 || o.maxBits <= o.onset {
		return fatal(fmt.Errorf("-max-bits %d must exceed -onset %d", o.maxBits, o.onset))
	}

	pts := sweep()
	if o.family != "all" {
		kept := pts[:0]
		for _, p := range pts {
			if p.family == o.family {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			return fatal(fmt.Errorf("unknown family %q (want all, ideal, stuck, bias, markov, lockin or drift)", o.family))
		}
		pts = kept
	}

	results := make([]result, len(pts))
	for i, pt := range pts {
		res := result{point: pt, trials: o.trials}
		for trial := 0; trial < o.trials; trial++ {
			seed := o.seed + 1000*int64(i) + int64(trial)
			onset := o.onset
			if pt.premixed {
				onset = 0
			}
			src := pt.makeSource(seed, onset)
			tracker.Reset()
			if at, ok := runTrial(tracker, src, o.maxBits); ok {
				res.detected++
				res.latencies = append(res.latencies, at-int64(onset))
			}
		}
		results[i] = res
	}

	switch o.format {
	case "table":
		printTable(o.stdout, o, results)
	case "csv":
		printCSV(o.stdout, results)
	default:
		return fatal(fmt.Errorf("unknown format %q (want table or csv)", o.format))
	}
	return 0
}

// runTrial feeds the source through the tracker until the latch fires or
// the bit budget runs out, returning the detection bit index.
func runTrial(tr *online.Tracker, src trng.Source, maxBits int) (int64, bool) {
	for fed := 0; fed < maxBits; fed += 64 {
		var w uint64
		for i := 0; i < 64; i++ {
			b, err := src.ReadBit()
			if err != nil {
				// The zoo sources never hard-fail; a transient is retried by
				// rereading, matching the Supervisor's retry semantics.
				i--
				continue
			}
			w |= uint64(b&1) << uint(i)
		}
		tr.Push(w, 64)
		if tr.Alarmed() {
			return tr.DetectedAt(), true
		}
	}
	return -1, false
}

func printTable(w io.Writer, o options, results []result) {
	fmt.Fprintf(w, "time-to-detect: %d trials/point, onset bit %d, horizon %d bits\n",
		o.trials, o.onset, o.maxBits)
	fmt.Fprintf(w, "%-8s %-14s %9s %12s %12s %12s %12s\n",
		"family", "severity", "detected", "median-ttd", "mean-ttd", "min-ttd", "max-ttd")
	for _, r := range results {
		median, mean, min, max := r.stats()
		det := fmt.Sprintf("%d/%d", r.detected, r.trials)
		fmt.Fprintf(w, "%-8s %-14s %9s %12s %12s %12s %12s\n",
			r.point.family, r.point.severity, det,
			cell(median), cell(mean), cell(min), cell(max))
	}
	fmt.Fprintln(w, "ttd in bits past the defect onset; '-' = no trial detected (censored at the horizon)")
}

func cell(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func printCSV(w io.Writer, results []result) {
	fmt.Fprintln(w, "family,severity,trials,detected,median_ttd_bits,mean_ttd_bits,min_ttd_bits,max_ttd_bits")
	for _, r := range results {
		median, mean, min, max := r.stats()
		fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d,%d\n",
			r.point.family, r.point.severity, r.trials, r.detected, median, mean, min, max)
	}
}

func parseVariant(s string) (hwblock.Variant, error) {
	switch strings.ToLower(s) {
	case "light":
		return hwblock.Light, nil
	case "medium":
		return hwblock.Medium, nil
	case "high":
		return hwblock.High, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}
