package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hwblock"
)

func TestParseVariant(t *testing.T) {
	cases := []struct {
		in   string
		want hwblock.Variant
		ok   bool
	}{
		{"light", hwblock.Light, true},
		{"MEDIUM", hwblock.Medium, true},
		{"High", hwblock.High, true},
		{"huge", 0, false},
	}
	for _, c := range cases {
		got, err := parseVariant(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseVariant(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseVariant(%q) accepted", c.in)
		}
	}
}

func TestSimulatedSource(t *testing.T) {
	for _, kind := range []string{"ideal", "biased", "markov", "ringosc", "locked", "stuck"} {
		src, err := simulatedSource(kind, 0.6, 1)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if _, err := src.ReadBit(); err != nil {
			t.Errorf("%s: ReadBit: %v", kind, err)
		}
	}
	if _, err := simulatedSource("nope", 0.5, 1); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestFileSourceASCII(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bits.txt")
	if err := os.WriteFile(path, []byte("1010\n1100"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := fileSource(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for i := 0; i < 8; i++ {
		b, err := src.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '0'+b)
	}
	if string(got) != "10101100" {
		t.Errorf("read %q", got)
	}
	if src.Name() != "file" {
		t.Errorf("Name = %q", src.Name())
	}
}

func TestFileSourceRaw(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bits.bin")
	if err := os.WriteFile(path, []byte{0xA5}, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := fileSource(path, true)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for i := 0; i < 8; i++ {
		b, _ := src.ReadBit()
		got = append(got, '0'+b)
	}
	if string(got) != "10100101" {
		t.Errorf("raw read %q", got)
	}
}

func TestFileSourceBadContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("10x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fileSource(path, false); err == nil {
		t.Error("invalid ASCII accepted")
	}
	if _, err := fileSource(filepath.Join(dir, "missing.txt"), false); err == nil {
		t.Error("missing file accepted")
	}
}
