package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/hwblock"
)

func TestParseVariant(t *testing.T) {
	cases := []struct {
		in   string
		want hwblock.Variant
		ok   bool
	}{
		{"light", hwblock.Light, true},
		{"MEDIUM", hwblock.Medium, true},
		{"High", hwblock.High, true},
		{"huge", 0, false},
	}
	for _, c := range cases {
		got, err := parseVariant(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseVariant(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseVariant(%q) accepted", c.in)
		}
	}
}

func TestSimulatedSource(t *testing.T) {
	for _, kind := range []string{"ideal", "biased", "markov", "ringosc", "locked", "stuck"} {
		src, err := simulatedSource(kind, 0.6, 1)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if _, err := src.ReadBit(); err != nil {
			t.Errorf("%s: ReadBit: %v", kind, err)
		}
	}
	if _, err := simulatedSource("nope", 0.5, 1); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestFileSourceASCII(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bits.txt")
	if err := os.WriteFile(path, []byte("1010\n1100"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := fileSource(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for i := 0; i < 8; i++ {
		b, err := src.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '0'+b)
	}
	if string(got) != "10101100" {
		t.Errorf("read %q", got)
	}
	if src.Name() != "file" {
		t.Errorf("Name = %q", src.Name())
	}
}

func TestFileSourceRaw(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bits.bin")
	if err := os.WriteFile(path, []byte{0xA5}, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := fileSource(path, true)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for i := 0; i < 8; i++ {
		b, _ := src.ReadBit()
		got = append(got, '0'+b)
	}
	if string(got) != "10100101" {
		t.Errorf("raw read %q", got)
	}
}

func TestFileSourceBadContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("10x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fileSource(path, false); err == nil {
		t.Error("invalid ASCII accepted")
	}
	if _, err := fileSource(filepath.Join(dir, "missing.txt"), false); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunExposesMetricFamilies runs the full pipeline in-process with the
// metrics endpoint bound to a free port, then scrapes it while the server
// goroutine is still live — the acceptance check that a plain run exposes
// at least 12 distinct metric families.
func TestRunExposesMetricFamilies(t *testing.T) {
	var out, errOut strings.Builder
	var addr string
	o := options{
		n: 128, variant: "light", alpha: 0.01,
		source: "ideal", p: 0.6, seed: 1, sequences: 3,
		fast: true, workers: 1,
		metricsAddr: "127.0.0.1:0",
		traceOut:    filepath.Join(t.TempDir(), "trace.jsonl"),
		stdout:      &out, stderr: &errOut,
		boundAddr: &addr,
	}
	if code := run(o); code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if addr == "" {
		t.Fatal("run did not report the bound metrics address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families := make(map[string]bool)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families[strings.Fields(rest)[0]] = true
		}
	}
	if len(families) < 12 {
		t.Errorf("plain run exposes %d metric families, want >= 12:\n%v", len(families), families)
	}
	for _, want := range []string{
		"trng_monitor_sequences_total", "trng_ingest_bits_total",
		"trng_regfile_bus_reads_total", "otftest_sequence_seconds",
	} {
		if !families[want] {
			t.Errorf("family %s missing from the exposition", want)
		}
	}
	if !strings.Contains(out.String(), "families exposed") {
		t.Errorf("run output missing the family summary:\n%s", out.String())
	}
	if _, err := os.Stat(o.traceOut); err != nil {
		t.Errorf("trace file not written: %v", err)
	}
}

// TestRunSupervisedTracesFaults checks the supervised path end to end:
// injected faults surface in the -trace-out file.
func TestRunSupervisedTracesFaults(t *testing.T) {
	var out, errOut strings.Builder
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	o := options{
		n: 128, variant: "light", alpha: 0.01,
		source: "ideal", p: 0.6, seed: 1, sequences: 4,
		faultRate: 0.01, faultBurst: 1,
		bitDeadline: 50 * time.Millisecond,
		fast:        true, workers: 1,
		traceOut: tracePath,
		stdout:   &out, stderr: &errOut,
	}
	if code := run(o); code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"kind":"fault.flaky"`) {
		t.Errorf("trace file has no injected-fault events:\n%s", trace)
	}
}

// TestRunWithoutObsFlags pins the default path: no registry, no server, no
// trace — exactly the pre-observability behavior.
func TestRunWithoutObsFlags(t *testing.T) {
	var out, errOut strings.Builder
	o := options{
		n: 128, variant: "light", alpha: 0.01,
		source: "ideal", p: 0.6, seed: 1, sequences: 2,
		fast: true, workers: 1,
		stdout: &out, stderr: &errOut,
	}
	if code := run(o); code != 0 {
		t.Fatalf("run exited %d\nstderr:\n%s", code, errOut.String())
	}
	if strings.Contains(out.String(), "metrics:") {
		t.Errorf("uninstrumented run mentioned metrics:\n%s", out.String())
	}
}
