// Command otftest runs the on-the-fly testing platform over a bit stream:
// either a file of ASCII '0'/'1' characters (or raw bytes with -raw), or a
// simulated TRNG.
//
// Usage:
//
//	otftest -n 65536 -variant high -alpha 0.01 -file bits.txt
//	otftest -n 128 -variant light -source biased -p 0.6 -sequences 10
//	cat bits.txt | otftest -n 65536 -variant medium -file -
//
// Supervision (fault injection and graceful degradation):
//
//	otftest -n 128 -variant light -source ideal -sequences 8 -fault-rate 0.01
//	otftest -n 128 -variant light -source ideal -sequences 8 \
//	    -stall-after 300 -standby ideal -bit-deadline 50ms
//	otftest -n 128 -variant light -source ideal -sequences 8 \
//	    -corrupt-reads 0.05 -verify-readout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hwblock"
	"repro/internal/trng"
)

func main() {
	n := flag.Int("n", 65536, "sequence length (128, 65536 or 1048576)")
	variant := flag.String("variant", "medium", "design variant: light, medium or high")
	alpha := flag.Float64("alpha", 0.01, "level of significance (NIST: 0.001..0.01)")
	file := flag.String("file", "", "bit-stream file ('-' for stdin); ASCII 0/1 unless -raw")
	raw := flag.Bool("raw", false, "treat the file as raw bytes, MSB first")
	source := flag.String("source", "", "simulated source: ideal, biased, markov, ringosc, locked, stuck")
	p := flag.Float64("p", 0.6, "bias / stickiness parameter for simulated sources")
	seed := flag.Int64("seed", 1, "seed for simulated sources")
	sequences := flag.Int("sequences", 1, "number of sequences to evaluate")
	faultRate := flag.Float64("fault-rate", 0, "inject transient read faults at this per-bit rate (enables supervision)")
	faultBurst := flag.Int("fault-burst", 1, "length of each injected fault burst, in reads")
	stallAfter := flag.Int("stall-after", 0, "stall the source after this many bits (enables supervision and the watchdog)")
	standby := flag.String("standby", "", "standby simulated source for failover (same kinds as -source)")
	bitDeadline := flag.Duration("bit-deadline", 50*time.Millisecond, "watchdog deadline per bit when supervision is active")
	corruptReads := flag.Float64("corrupt-reads", 0, "corrupt register-file bus reads at this per-read rate (enables supervision)")
	verifyReadout := flag.Bool("verify-readout", false, "double-evaluate each sequence and quarantine on readout mismatch")
	fast := flag.Bool("fast", true, "ingest via the word-level fast path (bit-exact with the structural simulation)")
	cycleAccurate := flag.Bool("cycle-accurate", false, "ingest via the cycle-accurate structural simulation (golden reference)")
	workers := flag.Int("workers", 1, "shard sequences across this many goroutines, one independent seeded source each (simulated sources only; 0 = all CPUs)")
	flag.Parse()

	path := hwblock.FastPath
	if *cycleAccurate || !*fast {
		path = hwblock.CycleAccurate
	}

	v, err := parseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	cfg, err := hwblock.NewConfig(*n, v)
	if err != nil {
		fatal(err)
	}
	mon, err := core.NewMonitor(cfg, *alpha)
	if err != nil {
		fatal(err)
	}
	if err := mon.Block().SetPath(path); err != nil {
		fatal(err)
	}

	var src trng.Source
	switch {
	case *file != "":
		src, err = fileSource(*file, *raw)
		if err != nil {
			fatal(err)
		}
	case *source != "":
		src, err = simulatedSource(*source, *p, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -file or -source"))
	}

	supervised := *faultRate > 0 || *stallAfter > 0 || *standby != "" ||
		*corruptReads > 0 || *verifyReadout

	if *workers != 1 {
		if supervised {
			fatal(fmt.Errorf("-workers cannot be combined with supervision flags"))
		}
		if *source == "" {
			fatal(fmt.Errorf("-workers needs a simulated -source (each sequence gets its own seeded source)"))
		}
	}

	var reports []core.SequenceReport
	var supRep *core.SupervisorReport
	var runErr error
	var ingestBits int64
	start := time.Now()
	switch {
	case *workers != 1:
		runner := &core.SequenceRunner{Cfg: cfg, Alpha: *alpha, Workers: *workers, Path: path}
		reports, runErr = runner.Run(*sequences, func(trial int) trng.Source {
			s, err := simulatedSource(*source, *p, *seed+int64(trial))
			if err != nil {
				panic(err) // the kind was validated above
			}
			return s
		})
		if runErr != nil {
			fatal(runErr)
		}
		ingestBits = int64(*sequences) * int64(cfg.N)
	case supervised:
		if *faultRate > 0 {
			src = faultinject.NewFlaky(src, *faultRate, *faultBurst, *seed+1)
		}
		if *stallAfter > 0 {
			src = faultinject.NewStall(src, *stallAfter)
		}
		if *corruptReads > 0 {
			faultinject.CorruptRegFile(mon.Block().RegFile(), *corruptReads, *seed+2)
		}
		var sby trng.Source
		if *standby != "" {
			if sby, err = simulatedSource(*standby, *p, *seed+3); err != nil {
				fatal(err)
			}
		}
		sup := core.NewSupervisor(mon, src, sby, core.SupervisorConfig{
			BitDeadline:   *bitDeadline,
			VerifyReadout: *verifyReadout,
		})
		supRep, runErr = sup.Run(*sequences)
		reports = supRep.Reports
		ingestBits = mon.BitsSeen()
	default:
		reports, runErr = mon.Watch(src, *sequences)
		if runErr != nil && len(reports) == 0 {
			fatal(runErr)
		}
		ingestBits = mon.BitsSeen()
	}
	elapsed := time.Since(start)

	exit := 0
	for i, r := range reports {
		status := "PASS"
		if !r.Report.Pass() {
			status = fmt.Sprintf("FAIL (tests %v)", r.Report.Failed())
			exit = 1
		}
		seqNo := r.Index
		if *workers != 1 {
			seqNo = i // each trial has its own monitor, so Index is always 0
		}
		fmt.Printf("sequence %d [bits %d..%d): %s\n",
			seqNo, r.StartBit, r.StartBit+int64(cfg.N), status)
		for _, v := range r.Report.Verdicts {
			mark := "ok"
			if !v.Pass {
				mark = "FAIL"
			}
			fmt.Printf("  test %-2d %-4s statistic=%d threshold=%d %s\n",
				v.TestID, mark, v.Statistic, v.Threshold, v.Note)
		}
		fmt.Printf("  software cost: %s\n", r.Report.Cost.String())
	}
	if supRep != nil {
		fmt.Printf("supervision: condition=%s quarantined=%d retries=%d active=%s\n",
			supRep.Condition, supRep.Quarantined, supRep.Retries, supRep.ActiveSource)
		for _, e := range supRep.Events {
			fmt.Printf("  %s\n", e)
		}
		if supRep.Condition == core.SourceFault {
			exit = 2
		}
	}
	if secs := elapsed.Seconds(); ingestBits > 0 && secs > 0 {
		fmt.Printf("ingest: %d bits in %v via %s path, %d worker(s) (%.3g bits/s)\n",
			ingestBits, elapsed.Round(time.Millisecond), path, *workers,
			float64(ingestBits)/secs)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "otftest: stream ended early: %v\n", runErr)
		exit = 2
	}
	os.Exit(exit)
}

func parseVariant(s string) (hwblock.Variant, error) {
	switch strings.ToLower(s) {
	case "light":
		return hwblock.Light, nil
	case "medium":
		return hwblock.Medium, nil
	case "high":
		return hwblock.High, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func fileSource(path string, raw bool) (trng.Source, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var seq *bitstream.Sequence
	if raw {
		seq = bitstream.FromBytes(data)
	} else {
		seq, err = bitstream.ParseASCII(string(data))
		if err != nil {
			return nil, err
		}
	}
	return &sequenceSource{r: bitstream.NewReader(seq)}, nil
}

// sequenceSource adapts a finite sequence to the Source interface.
type sequenceSource struct {
	r *bitstream.Reader
}

func (s *sequenceSource) Name() string { return "file" }

func (s *sequenceSource) ReadBit() (byte, error) { return s.r.ReadBit() }

func simulatedSource(kind string, p float64, seed int64) (trng.Source, error) {
	switch strings.ToLower(kind) {
	case "ideal":
		return trng.NewIdeal(seed), nil
	case "biased":
		return trng.NewBiased(p, seed), nil
	case "markov":
		return trng.NewMarkov(p, seed), nil
	case "ringosc":
		return trng.NewRingOscillator(100.37, 0.5, seed), nil
	case "locked":
		return trng.NewRingOscillator(100.37, 0.001, seed), nil
	case "stuck":
		return trng.NewStuckAt(1), nil
	}
	return nil, fmt.Errorf("unknown source %q", kind)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "otftest:", err)
	os.Exit(2)
}
