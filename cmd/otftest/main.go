// Command otftest runs the on-the-fly testing platform over a bit stream:
// either a file of ASCII '0'/'1' characters (or raw bytes with -raw), or a
// simulated TRNG.
//
// Usage:
//
//	otftest -n 65536 -variant high -alpha 0.01 -file bits.txt
//	otftest -n 128 -variant light -source biased -p 0.6 -sequences 10
//	cat bits.txt | otftest -n 65536 -variant medium -file -
//
// Supervision (fault injection and graceful degradation):
//
//	otftest -n 128 -variant light -source ideal -sequences 8 -fault-rate 0.01
//	otftest -n 128 -variant light -source ideal -sequences 8 \
//	    -stall-after 300 -standby ideal -bit-deadline 50ms
//	otftest -n 128 -variant light -source ideal -sequences 8 \
//	    -corrupt-reads 0.05 -verify-readout
//
// Observability (live metrics, event trace and profiling for soak runs):
//
//	otftest -n 65536 -variant high -source ideal -sequences 1000 \
//	    -metrics-addr :9600 -trace-out trace.jsonl
//	curl http://localhost:9600/metrics        # Prometheus text format
//	curl http://localhost:9600/metrics.json   # JSON exposition
//	curl http://localhost:9600/trace          # ring-buffered event trace
//	go tool pprof http://localhost:9600/debug/pprof/profile?seconds=10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hwblock"
	"repro/internal/obs"
	"repro/internal/trng"
)

// options carries every flag of the CLI; main parses, run executes. The
// split keeps the whole pipeline — including the observability wiring —
// testable in-process.
type options struct {
	n             int
	variant       string
	alpha         float64
	file          string
	raw           bool
	source        string
	p             float64
	seed          int64
	sequences     int
	faultRate     float64
	faultBurst    int
	stallAfter    int
	standby       string
	bitDeadline   time.Duration
	corruptReads  float64
	verifyReadout bool
	fast          bool
	cycleAccurate bool
	workers       int
	metricsAddr   string
	traceOut      string

	stdout io.Writer
	stderr io.Writer
	// boundAddr receives the metrics listener's bound address (useful
	// with ":0"); nil discards it.
	boundAddr *string
}

func main() {
	o := options{stdout: os.Stdout, stderr: os.Stderr}
	flag.IntVar(&o.n, "n", 65536, "sequence length (128, 65536 or 1048576)")
	flag.StringVar(&o.variant, "variant", "medium", "design variant: light, medium or high")
	flag.Float64Var(&o.alpha, "alpha", 0.01, "level of significance (NIST: 0.001..0.01)")
	flag.StringVar(&o.file, "file", "", "bit-stream file ('-' for stdin); ASCII 0/1 unless -raw")
	flag.BoolVar(&o.raw, "raw", false, "treat the file as raw bytes, MSB first")
	flag.StringVar(&o.source, "source", "", "simulated source: ideal, biased, markov, ringosc, locked, stuck")
	flag.Float64Var(&o.p, "p", 0.6, "bias / stickiness parameter for simulated sources")
	flag.Int64Var(&o.seed, "seed", 1, "seed for simulated sources")
	flag.IntVar(&o.sequences, "sequences", 1, "number of sequences to evaluate")
	flag.Float64Var(&o.faultRate, "fault-rate", 0, "inject transient read faults at this per-bit rate (enables supervision)")
	flag.IntVar(&o.faultBurst, "fault-burst", 1, "length of each injected fault burst, in reads")
	flag.IntVar(&o.stallAfter, "stall-after", 0, "stall the source after this many bits (enables supervision and the watchdog)")
	flag.StringVar(&o.standby, "standby", "", "standby simulated source for failover (same kinds as -source)")
	flag.DurationVar(&o.bitDeadline, "bit-deadline", 50*time.Millisecond, "watchdog deadline per bit when supervision is active")
	flag.Float64Var(&o.corruptReads, "corrupt-reads", 0, "corrupt register-file bus reads at this per-read rate (enables supervision)")
	flag.BoolVar(&o.verifyReadout, "verify-readout", false, "double-evaluate each sequence and quarantine on readout mismatch")
	flag.BoolVar(&o.fast, "fast", true, "ingest via the word-level fast path (bit-exact with the structural simulation)")
	flag.BoolVar(&o.cycleAccurate, "cycle-accurate", false, "ingest via the cycle-accurate structural simulation (golden reference)")
	flag.IntVar(&o.workers, "workers", 1, "shard sequences across this many goroutines, one independent seeded source each (simulated sources only; 0 = all CPUs)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics, /metrics.json, /trace and /debug/pprof on this address (e.g. :9600)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the event trace as JSON lines to this file ('-' for stdout) when the run ends")
	flag.Parse()
	os.Exit(run(o))
}

// run executes one monitoring run and returns the process exit code:
// 0 all sequences passed, 1 a statistical test failed, 2 operational
// failure (bad flags, unrecoverable source fault, early stream end).
func run(o options) int {
	fatal := func(err error) int {
		fmt.Fprintln(o.stderr, "otftest:", err)
		return 2
	}

	path := hwblock.FastPath
	if o.cycleAccurate || !o.fast {
		path = hwblock.CycleAccurate
	}

	v, err := parseVariant(o.variant)
	if err != nil {
		return fatal(err)
	}
	cfg, err := hwblock.NewConfig(o.n, v)
	if err != nil {
		return fatal(err)
	}
	mon, err := core.NewMonitor(cfg, o.alpha)
	if err != nil {
		return fatal(err)
	}
	if err := mon.Block().SetPath(path); err != nil {
		return fatal(err)
	}

	// The observability registry exists only when asked for: the default
	// path runs with a nil registry, which the instrumentation treats as
	// a no-op (and the differential suite proves bit-identical).
	var reg *obs.Registry
	if o.metricsAddr != "" || o.traceOut != "" {
		reg = obs.NewRegistry()
		mon.SetObs(reg)
	}
	if o.metricsAddr != "" {
		_, addr, err := obs.Serve(o.metricsAddr, reg)
		if err != nil {
			return fatal(err)
		}
		if o.boundAddr != nil {
			*o.boundAddr = addr
		}
		fmt.Fprintf(o.stdout, "metrics: serving http://%s/metrics (json: /metrics.json, trace: /trace, pprof: /debug/pprof/)\n", addr)
	}

	var src trng.Source
	switch {
	case o.file != "":
		src, err = fileSource(o.file, o.raw)
		if err != nil {
			return fatal(err)
		}
	case o.source != "":
		src, err = simulatedSource(o.source, o.p, o.seed)
		if err != nil {
			return fatal(err)
		}
	default:
		return fatal(fmt.Errorf("need -file or -source"))
	}

	supervised := o.faultRate > 0 || o.stallAfter > 0 || o.standby != "" ||
		o.corruptReads > 0 || o.verifyReadout

	if o.workers != 1 {
		if supervised {
			return fatal(fmt.Errorf("-workers cannot be combined with supervision flags"))
		}
		if o.source == "" {
			return fatal(fmt.Errorf("-workers needs a simulated -source (each sequence gets its own seeded source)"))
		}
	}

	reg.Gauge("otftest_run_info",
		"constant 1, labelled with the run configuration",
		"design", cfg.Name, "path", path.String(),
		"workers", fmt.Sprintf("%d", o.workers)).Set(1)
	seqSeconds := reg.Histogram("otftest_sequence_seconds",
		"wall-clock time per evaluated sequence (measured at the CLI boundary; "+
			"the monitor itself is clock-free)", obs.ExpBuckets(100e-6, 4, 12))

	var reports []core.SequenceReport
	var supRep *core.SupervisorReport
	var runErr error
	var ingestBits int64
	start := time.Now()
	switch {
	case o.workers != 1:
		runner := &core.SequenceRunner{Cfg: cfg, Alpha: o.alpha, Workers: o.workers, Path: path, Obs: reg}
		reports, runErr = runner.Run(o.sequences, func(trial int) trng.Source {
			s, err := simulatedSource(o.source, o.p, o.seed+int64(trial))
			if err != nil {
				panic(err) // the kind was validated above
			}
			return s
		})
		if runErr != nil {
			return fatal(runErr)
		}
		ingestBits = int64(o.sequences) * int64(cfg.N)
	case supervised:
		if o.faultRate > 0 {
			flaky := faultinject.NewFlaky(src, o.faultRate, o.faultBurst, o.seed+1)
			flaky.SetObs(reg)
			src = flaky
		}
		if o.stallAfter > 0 {
			stall := faultinject.NewStall(src, o.stallAfter)
			stall.SetObs(reg)
			src = stall
		}
		if o.corruptReads > 0 {
			faultinject.CorruptRegFile(mon.Block().RegFile(), o.corruptReads, o.seed+2).SetObs(reg)
		}
		var sby trng.Source
		if o.standby != "" {
			if sby, err = simulatedSource(o.standby, o.p, o.seed+3); err != nil {
				return fatal(err)
			}
		}
		sup := core.NewSupervisor(mon, src, sby, core.SupervisorConfig{
			BitDeadline:   o.bitDeadline,
			VerifyReadout: o.verifyReadout,
		})
		sup.SetObs(reg)
		supRep, runErr = sup.Run(o.sequences)
		reports = supRep.Reports
		ingestBits = mon.BitsSeen()
	default:
		// Sequence by sequence, so the per-sequence latency histogram can
		// observe each completion. Monitor state persists across Watch
		// calls — this is bit-identical to one Watch(src, sequences).
		for len(reports) < o.sequences {
			seqStart := time.Now()
			reps, err := mon.Watch(src, 1)
			if reg != nil {
				seqSeconds.Observe(time.Since(seqStart).Seconds())
			}
			reports = append(reports, reps...)
			if err != nil {
				runErr = err
				break
			}
		}
		if runErr != nil && len(reports) == 0 {
			return fatal(runErr)
		}
		ingestBits = mon.BitsSeen()
	}
	elapsed := time.Since(start)

	exit := 0
	for i, r := range reports {
		status := "PASS"
		if !r.Report.Pass() {
			status = fmt.Sprintf("FAIL (tests %v)", r.Report.Failed())
			exit = 1
		}
		seqNo := r.Index
		if o.workers != 1 {
			seqNo = i // each trial has its own monitor, so Index is always 0
		}
		fmt.Fprintf(o.stdout, "sequence %d [bits %d..%d): %s\n",
			seqNo, r.StartBit, r.StartBit+int64(cfg.N), status)
		for _, v := range r.Report.Verdicts {
			mark := "ok"
			if !v.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(o.stdout, "  test %-2d %-4s statistic=%d threshold=%d %s\n",
				v.TestID, mark, v.Statistic, v.Threshold, v.Note)
		}
		fmt.Fprintf(o.stdout, "  software cost: %s\n", r.Report.Cost.String())
	}
	if supRep != nil {
		fmt.Fprintf(o.stdout, "supervision: condition=%s quarantined=%d retries=%d active=%s\n",
			supRep.Condition, supRep.Quarantined, supRep.Retries, supRep.ActiveSource)
		for _, e := range supRep.Events {
			fmt.Fprintf(o.stdout, "  %s\n", e)
		}
		if supRep.Condition == core.SourceFault {
			exit = 2
		}
	}
	if secs := elapsed.Seconds(); ingestBits > 0 && secs > 0 {
		fmt.Fprintf(o.stdout, "ingest: %d bits in %v via %s path, %d worker(s) (%.3g bits/s)\n",
			ingestBits, elapsed.Round(time.Millisecond), path, o.workers,
			float64(ingestBits)/secs)
		reg.Gauge("otftest_ingest_bits_per_second",
			"measured end-to-end ingest throughput of the completed run").
			Set(float64(ingestBits) / secs)
		reg.Gauge("otftest_run_seconds", "wall-clock duration of the completed run").Set(secs)
	}
	if reg != nil && o.metricsAddr != "" {
		fmt.Fprintf(o.stdout, "metrics: %d families exposed\n", reg.Families())
	}
	if o.traceOut != "" {
		if err := writeTrace(reg, o.traceOut); err != nil {
			return fatal(err)
		}
		fmt.Fprintf(o.stdout, "trace: %d events retained (%d emitted) -> %s\n",
			reg.Trace().Len(), reg.Trace().Total(), o.traceOut)
	}
	if runErr != nil {
		fmt.Fprintf(o.stderr, "otftest: stream ended early: %v\n", runErr)
		exit = 2
	}
	return exit
}

// writeTrace dumps the registry's event trace as JSON lines.
func writeTrace(reg *obs.Registry, path string) error {
	if path == "-" {
		return reg.Trace().WriteJSONLines(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Trace().WriteJSONLines(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseVariant(s string) (hwblock.Variant, error) {
	switch strings.ToLower(s) {
	case "light":
		return hwblock.Light, nil
	case "medium":
		return hwblock.Medium, nil
	case "high":
		return hwblock.High, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func fileSource(path string, raw bool) (trng.Source, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var seq *bitstream.Sequence
	if raw {
		seq = bitstream.FromBytes(data)
	} else {
		seq, err = bitstream.ParseASCII(string(data))
		if err != nil {
			return nil, err
		}
	}
	return &sequenceSource{r: bitstream.NewReader(seq)}, nil
}

// sequenceSource adapts a finite sequence to the Source interface.
type sequenceSource struct {
	r *bitstream.Reader
}

func (s *sequenceSource) Name() string { return "file" }

func (s *sequenceSource) ReadBit() (byte, error) { return s.r.ReadBit() }

func simulatedSource(kind string, p float64, seed int64) (trng.Source, error) {
	switch strings.ToLower(kind) {
	case "ideal":
		return trng.NewIdeal(seed), nil
	case "biased":
		return trng.NewBiased(p, seed), nil
	case "markov":
		return trng.NewMarkov(p, seed), nil
	case "ringosc":
		return trng.NewRingOscillator(100.37, 0.5, seed), nil
	case "locked":
		return trng.NewRingOscillator(100.37, 0.001, seed), nil
	case "stuck":
		return trng.NewStuckAt(1), nil
	}
	return nil, fmt.Errorf("unknown source %q", kind)
}
