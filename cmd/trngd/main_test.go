package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func testOptions() options {
	return options{
		n:             128,
		variant:       "light",
		alpha:         0.01,
		streams:       48,
		words:         16,
		generations:   1,
		shards:        4,
		policy:        "block",
		faultyFrac:    0.25,
		transientRate: 0.2,
		biasedFrac:    0.125,
		bias:          0.9,
		seed:          1,
	}
}

func TestRunCleanFleet(t *testing.T) {
	var out, errOut bytes.Buffer
	o := testOptions()
	o.stdout, o.stderr = &out, &errOut
	if code := run(o); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"streams: 48 completed",
		"breaker trips",
		"conditions:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// The defect zoo must have exercised isolation: the stormer tenants
	// trip breakers (3 of the 12 faulty tenants), everyone else completes.
	if !strings.Contains(got, "3 breaker trips") {
		t.Fatalf("expected 3 breaker trips:\n%s", got)
	}
	if !strings.Contains(got, "3 source-fault") {
		t.Fatalf("expected 3 source-fault conditions:\n%s", got)
	}
}

func TestRunBitSlicedFleet(t *testing.T) {
	// The full defect zoo through the bit-sliced ingest path: verdict
	// counts, breaker trips and the batch accounting identity must all
	// come out exactly as the serial path produces them (run exits 2 on
	// any accounting leak).
	var out, errOut bytes.Buffer
	o := testOptions()
	o.bitSliced = true
	o.words = 32
	o.stdout, o.stderr = &out, &errOut
	if code := run(o); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "ingest=bitsliced") {
		t.Fatalf("banner should report the ingest mode:\n%s", got)
	}
	if !strings.Contains(got, "streams: 48 completed") {
		t.Fatalf("all streams must complete under bit-sliced ingest:\n%s", got)
	}
	if !strings.Contains(got, "3 breaker trips") {
		t.Fatalf("fault isolation must match the serial path (3 stormers):\n%s", got)
	}
}

func TestRunGenerationsRecycleMonitors(t *testing.T) {
	var out, errOut bytes.Buffer
	o := testOptions()
	o.streams = 8
	o.generations = 3
	o.stdout, o.stderr = &out, &errOut
	if code := run(o); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "streams: 24 completed") {
		t.Fatalf("want 8 slots x 3 generations = 24 completed streams:\n%s", out.String())
	}
}

func TestRunShedPolicyUnderPressure(t *testing.T) {
	var out, errOut bytes.Buffer
	o := testOptions()
	o.streams = 32
	o.words = 64
	o.shards = 1
	o.queue = 2
	o.policy = "shed"
	o.faultyFrac = 0
	o.biasedFrac = 0
	o.stdout, o.stderr = &out, &errOut
	if code := run(o); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	// The accounting identity is enforced by run itself (exit 2 on any
	// leak); here we only require the roll-up to be present.
	if !strings.Contains(out.String(), "batches:") {
		t.Fatalf("missing batch roll-up:\n%s", out.String())
	}
}

func TestRunStreamDeadlineSweeper(t *testing.T) {
	var out, errOut bytes.Buffer
	o := testOptions()
	o.streams = 8
	o.deadline = time.Hour // armed, but nothing plausibly stalls
	o.sweepEvery = 10 * time.Millisecond
	o.stdout, o.stderr = &out, &errOut
	if code := run(o); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "0 watchdog") {
		t.Fatalf("no stream should have stalled:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.variant = "nope" },
		func(o *options) { o.policy = "nope" },
		func(o *options) { o.n = 100 },
		func(o *options) { o.streams = 0 },
	}
	for i, mutate := range cases {
		var out, errOut bytes.Buffer
		o := testOptions()
		o.stdout, o.stderr = &out, &errOut
		mutate(&o)
		if code := run(o); code != 2 {
			t.Fatalf("case %d: exit %d, want 2", i, code)
		}
	}
}
