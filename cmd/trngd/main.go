// Command trngd is the fleet-scale monitoring daemon: it multiplexes many
// concurrent TRNG streams over internal/fleet's sharded pool of pooled
// monitors and reports per-tenant verdicts, fault isolation and load
// shedding. Without real hardware attached it drives a simulated defect
// zoo — a configurable fraction of tenants misbehaves (bias, transient
// storms, hard-fault storms that trip the per-stream breaker) while the
// rest stream healthy bits — which makes the daemon double as a chaos-soak
// harness: CI runs it race-enabled for a bounded wall time and asserts the
// batch accounting identity and per-stream isolation invariants.
//
// Usage:
//
//	trngd -n 128 -variant light -streams 256 -words 128
//	trngd -streams 1024 -shards 8 -policy shed -queue 16
//	trngd -streams 64 -faulty 0.25 -generations 2 -metrics-addr :9600
//
// Exit codes: 0 clean (statistical failures from the defect zoo are
// expected and reported, not fatal), 2 operational failure (bad flags, an
// admission/ingest error, or a broken accounting invariant).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hwblock"
	"repro/internal/obs"
	"repro/internal/trng"
)

// options carries every flag; main parses, run executes (the same
// testable split as cmd/otftest).
type options struct {
	n             int
	variant       string
	alpha         float64
	streams       int
	words         int
	generations   int
	shards        int
	queue         int
	policy        string
	sampleEvery   int
	maxStreams    int
	faultyFrac    float64
	transientRate float64
	biasedFrac    float64
	bias          float64
	seed          int64
	bitSliced     bool
	verifyReadout bool
	alarm         int
	deadline      time.Duration
	sweepEvery    time.Duration
	metricsAddr   string

	stdout io.Writer
	stderr io.Writer
	// boundAddr receives the metrics listener's bound address; nil
	// discards it.
	boundAddr *string
}

func main() {
	o := options{stdout: os.Stdout, stderr: os.Stderr}
	flag.IntVar(&o.n, "n", 128, "sequence length (128, 65536 or 1048576)")
	flag.StringVar(&o.variant, "variant", "light", "design variant: light, medium or high")
	flag.Float64Var(&o.alpha, "alpha", 0.01, "level of significance")
	flag.IntVar(&o.streams, "streams", 256, "concurrent TRNG streams (tenants)")
	flag.IntVar(&o.words, "words", 64, "64-bit words pushed per stream per generation")
	flag.IntVar(&o.generations, "generations", 1, "register/detach cycles per tenant slot (exercises monitor recycling)")
	flag.IntVar(&o.shards, "shards", 0, "shard worker goroutines (0 = all CPUs)")
	flag.IntVar(&o.queue, "queue", 0, "per-shard ingest queue depth, in batches (0 = default)")
	flag.StringVar(&o.policy, "policy", "block", "full-queue policy: block (backpressure), shed (drop newest), sample (degrade to sampled ingest)")
	flag.IntVar(&o.sampleEvery, "sample-every", 0, "keep one in this many congested batches under -policy sample (0 = default)")
	flag.IntVar(&o.maxStreams, "max-streams", 0, "admission cap (0 = unlimited)")
	flag.Float64Var(&o.faultyFrac, "faulty", 0.125, "fraction of tenants with a faulting source (transient storms; a subset storms hard enough to trip the breaker)")
	flag.Float64Var(&o.transientRate, "transient-rate", 0.05, "per-batch transient fault probability on faulty tenants")
	flag.Float64Var(&o.biasedFrac, "biased", 0.0625, "fraction of tenants streaming a biased (statistically defective) source")
	flag.Float64Var(&o.bias, "bias", 0.75, "P(bit=1) of the biased tenants")
	flag.Int64Var(&o.seed, "seed", 1, "base seed; every tenant derives its own deterministic substream")
	flag.BoolVar(&o.bitSliced, "bitsliced", false, "use bit-sliced lane-group ingest (transposed 64-stream tiles; see internal/hwslice); verdicts are bit-identical to serial ingest")
	flag.BoolVar(&o.verifyReadout, "verify-readout", false, "double-evaluate each sequence and quarantine on readout mismatch")
	flag.IntVar(&o.alarm, "alarm-threshold", 0, "latch a per-stream alarm after this many consecutive failing sequences (0 = off)")
	flag.DurationVar(&o.deadline, "stream-deadline", 0, "per-stream push deadline; stalled streams get watchdog faults (0 = off)")
	flag.DurationVar(&o.sweepEvery, "sweep-every", 100*time.Millisecond, "stall-sweeper period when -stream-deadline is set")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics, /metrics.json, /trace and /debug/pprof on this address")
	flag.Parse()
	os.Exit(run(o))
}

// tenantPlan is one tenant's deterministic behaviour profile.
type tenantPlan struct {
	name    string
	seed    int64
	faulty  bool // transient storms at transientRate
	stormer bool // additionally trips its breaker with consecutive hard faults
	biased  bool // statistically defective payload
}

func run(o options) int {
	fatal := func(err error) int {
		fmt.Fprintln(o.stderr, "trngd:", err)
		return 2
	}
	v, err := parseVariant(o.variant)
	if err != nil {
		return fatal(err)
	}
	design, err := hwblock.NewConfig(o.n, v)
	if err != nil {
		return fatal(err)
	}
	policy, err := fleet.ParseShedPolicy(o.policy)
	if err != nil {
		return fatal(err)
	}
	if o.streams < 1 || o.words < 1 || o.generations < 1 {
		return fatal(fmt.Errorf("-streams, -words and -generations must be ≥ 1"))
	}

	reg := obs.NewRegistry()
	if o.metricsAddr != "" {
		_, addr, err := obs.Serve(o.metricsAddr, reg)
		if err != nil {
			return fatal(err)
		}
		if o.boundAddr != nil {
			*o.boundAddr = addr
		}
		fmt.Fprintf(o.stdout, "metrics: serving http://%s/metrics (json: /metrics.json, trace: /trace, pprof: /debug/pprof/)\n", addr)
	}

	pool, err := fleet.New(fleet.Config{
		Design:         design,
		Alpha:          o.alpha,
		Shards:         o.shards,
		QueueDepth:     o.queue,
		MaxStreams:     o.maxStreams,
		Policy:         policy,
		SampleEvery:    o.sampleEvery,
		BitSliced:      o.bitSliced,
		VerifyReadout:  o.verifyReadout,
		AlarmThreshold: o.alarm,
		StreamDeadline: o.deadline,
		Obs:            reg,
	})
	if err != nil {
		return fatal(err)
	}
	cfg := pool.Config()
	ingest := "serial"
	if cfg.BitSliced {
		ingest = "bitsliced"
	}
	fmt.Fprintf(o.stdout, "trngd: design=%s alpha=%g shards=%d queue=%d policy=%s ingest=%s streams=%d words=%d generations=%d\n",
		design.Name, o.alpha, cfg.Shards, cfg.QueueDepth, policy, ingest, o.streams, o.words, o.generations)

	// The stall sweeper, when armed, runs the fleet-level watchdog.
	sweepDone := make(chan struct{})
	var sweepWG sync.WaitGroup
	if o.deadline > 0 {
		sweepWG.Add(1)
		go func() {
			defer sweepWG.Done()
			t := time.NewTicker(o.sweepEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					pool.SweepStalled()
				case <-sweepDone:
					return
				}
			}
		}()
	}

	// One pump goroutine per tenant slot, each running `generations`
	// register/push/detach cycles against its own deterministic plan.
	reports := make([]fleet.StreamReport, 0, o.streams*o.generations)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for slot := 0; slot < o.streams; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for gen := 0; gen < o.generations; gen++ {
				plan := planFor(o, slot, gen)
				rep, err := runTenant(pool, plan, o)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("tenant %s: %w", plan.name, err)
				}
				if err == nil {
					reports = append(reports, rep)
				}
				mu.Unlock()
			}
		}(slot)
	}
	wg.Wait()
	close(sweepDone)
	sweepWG.Wait()
	leftover := pool.Shutdown()
	reports = append(reports, leftover...)
	if firstErr != nil {
		return fatal(firstErr)
	}
	return summarize(o, reports)
}

// planFor derives one tenant's deterministic behaviour from the base seed.
func planFor(o options, slot, gen int) tenantPlan {
	// Behaviour classes are assigned by slot position so the configured
	// fractions are exact, not sampled.
	faultyCut := int(o.faultyFrac * float64(o.streams))
	biasedCut := faultyCut + int(o.biasedFrac*float64(o.streams))
	p := tenantPlan{
		name: fmt.Sprintf("tenant-%04d-g%d", slot, gen),
		seed: o.seed + int64(slot)*1_000_003 + int64(gen)*7_919,
	}
	switch {
	case slot < faultyCut:
		p.faulty = true
		p.stormer = slot%4 == 0 // every fourth faulty tenant trips its breaker
	case slot < biasedCut:
		p.biased = true
	}
	return p
}

// runTenant registers, pumps and detaches one tenant generation.
func runTenant(pool *fleet.Pool, plan tenantPlan, o options) (fleet.StreamReport, error) {
	s, err := pool.Register(plan.name)
	if err != nil {
		return fleet.StreamReport{}, err
	}
	rng := rand.New(rand.NewSource(plan.seed))
	var src trng.Source = trng.NewIdeal(plan.seed)
	if plan.biased {
		src = trng.NewBiased(o.bias, plan.seed)
	}
	stormAt := -1
	if plan.stormer {
		stormAt = o.words / 2
	}
	hard := errors.New("trngd: injected hard source fault")
	// Healthy tenants push through the batched producer API in small runs
	// — the realistic shape for a DMA'd hardware source, and the fast path
	// on bit-sliced pools (one atomic publish per staging fill). Tenants
	// that interleave fault events keep the word-at-a-time path so the
	// fault lands at its exact position in the batch order.
	const runWords = 32
	var run []uint64
	if !plan.faulty && stormAt < 0 {
		run = make([]uint64, 0, runWords)
	}
	for i := 0; i < o.words; i++ {
		var w uint64
		for b := 0; b < 64; b++ {
			bit, err := src.ReadBit()
			if err != nil {
				return fleet.StreamReport{}, err
			}
			w |= uint64(bit&1) << uint(b)
		}
		if run != nil {
			run = append(run, w)
			if len(run) == runWords || i == o.words-1 {
				if err := s.PushWords(run); err != nil &&
					!errors.Is(err, fleet.ErrShed) && !errors.Is(err, fleet.ErrSampledOut) {
					return fleet.StreamReport{}, err
				}
				run = run[:0]
			}
			continue
		}
		if err := s.Push(w, 64); err != nil &&
			!errors.Is(err, fleet.ErrShed) && !errors.Is(err, fleet.ErrSampledOut) {
			return fleet.StreamReport{}, err
		}
		if plan.faulty && rng.Float64() < o.transientRate {
			if err := s.PushFault(trng.ErrTransient); err != nil {
				return fleet.StreamReport{}, err
			}
		}
		if i == stormAt {
			// Consecutive mid-sequence hard faults until the breaker trips.
			for k := 0; k < core.DefaultQuarantineLimit+2; k++ {
				if err := s.Push(rng.Uint64(), 32); err != nil &&
					!errors.Is(err, fleet.ErrShed) && !errors.Is(err, fleet.ErrSampledOut) {
					return fleet.StreamReport{}, err
				}
				if err := s.PushFault(hard); err != nil {
					return fleet.StreamReport{}, err
				}
			}
		}
	}
	return s.Detach(), nil
}

// summarize prints the fleet-wide roll-up and enforces the accounting
// identity every report must satisfy.
func summarize(o options, reports []fleet.StreamReport) int {
	var seq, pass, fail, quar, retries, watchdogs, trips, latched int
	var offered, accepted, shed, sampled, discarded int64
	conditions := map[core.Condition]int{}
	broken := 0
	for _, r := range reports {
		seq += r.Sequences
		pass += r.Passed
		fail += r.Failed
		quar += r.Quarantined
		retries += r.Retries
		watchdogs += r.Watchdogs
		if r.BreakerTripped {
			trips++
		}
		if r.AlarmLatched {
			latched++
		}
		offered += r.OfferedBatches
		accepted += r.AcceptedBatches
		shed += r.ShedBatches
		sampled += r.SampledOutBatches
		discarded += r.DiscardedBatches
		conditions[r.Condition]++
		if r.OfferedBatches != r.AcceptedBatches+r.ShedBatches+r.SampledOutBatches+r.DiscardedBatches {
			broken++
			fmt.Fprintf(o.stderr, "trngd: %s: batch accounting broken: offered %d != accepted %d + shed %d + sampled %d + discarded %d\n",
				r.Tenant, r.OfferedBatches, r.AcceptedBatches, r.ShedBatches, r.SampledOutBatches, r.DiscardedBatches)
		}
	}
	fmt.Fprintf(o.stdout, "streams: %d completed\n", len(reports))
	fmt.Fprintf(o.stdout, "sequences: %d evaluated (%d pass, %d fail)\n", seq, pass, fail)
	fmt.Fprintf(o.stdout, "batches: %d offered, %d accepted, %d shed, %d sampled-out, %d discarded\n",
		offered, accepted, shed, sampled, discarded)
	fmt.Fprintf(o.stdout, "faults: %d transient absorbed, %d watchdog; %d quarantines, %d breaker trips, %d alarms latched\n",
		retries, watchdogs, quar, trips, latched)
	fmt.Fprintf(o.stdout, "conditions: %d ok, %d degraded, %d stat-fail, %d source-fault\n",
		conditions[core.OK], conditions[core.Degraded], conditions[core.StatFail], conditions[core.SourceFault])
	if broken > 0 {
		fmt.Fprintf(o.stderr, "trngd: %d stream(s) with broken batch accounting\n", broken)
		return 2
	}
	return 0
}

func parseVariant(s string) (hwblock.Variant, error) {
	switch strings.ToLower(s) {
	case "light":
		return hwblock.Light, nil
	case "medium":
		return hwblock.Medium, nil
	case "high":
		return hwblock.High, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}
