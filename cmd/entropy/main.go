// Command entropy runs the SP800-90B min-entropy estimators and continuous
// health tests over a bit stream, complementing otftest's statistical
// verdicts with an entropy assessment.
//
// Usage:
//
//	trngsim -source markov -p 0.7 -bits 1048576 -width 0 | entropy -file -
//	entropy -file bits.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bitstream"
	"repro/internal/obs"
	"repro/internal/sp80090b"
)

func main() {
	file := flag.String("file", "", "bit-stream file ('-' for stdin); ASCII 0/1 unless -raw")
	raw := flag.Bool("raw", false, "treat the file as raw bytes, MSB first")
	h := flag.Float64("h", 1.0, "asserted entropy per bit for the health-test cutoffs")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /metrics.json on this address while analysing")
	flag.Parse()

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		if _, addr, err := obs.Serve(*metricsAddr, reg); err != nil {
			fatal(err)
		} else {
			fmt.Fprintf(os.Stderr, "entropy: metrics on http://%s/metrics\n", addr)
		}
	}

	if *file == "" {
		fmt.Fprintln(os.Stderr, "entropy: need -file")
		os.Exit(2)
	}
	var data []byte
	var err error
	if *file == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*file)
	}
	if err != nil {
		fatal(err)
	}
	var seq *bitstream.Sequence
	if *raw {
		seq = bitstream.FromBytes(data)
	} else {
		seq, err = bitstream.ParseASCII(string(data))
		if err != nil {
			fatal(err)
		}
	}
	if seq.Len() < 1024 {
		fatal(fmt.Errorf("need at least 1024 bits, got %d", seq.Len()))
	}

	mcv, err := sp80090b.MostCommonValue(seq)
	if err != nil {
		fatal(err)
	}
	mk, err := sp80090b.Markov(seq)
	if err != nil {
		fatal(err)
	}
	min := mcv.MinEntropy
	if mk.MinEntropy < min {
		min = mk.MinEntropy
	}
	reg.Gauge("entropy_bits_analysed", "length of the analysed bit stream").Set(float64(seq.Len()))
	reg.Gauge("entropy_min_entropy_bits_per_bit",
		"SP800-90B min-entropy lower bound, by estimator",
		"estimator", "most-common-value").Set(mcv.MinEntropy)
	reg.Gauge("entropy_min_entropy_bits_per_bit",
		"SP800-90B min-entropy lower bound, by estimator",
		"estimator", "markov").Set(mk.MinEntropy)

	fmt.Printf("bits analysed:           %d\n", seq.Len())
	fmt.Printf("most-common-value:       H >= %.4f bits/bit (p_hat=%.4f)\n", mcv.MinEntropy, mcv.PHat)
	fmt.Printf("first-order Markov:      H >= %.4f bits/bit (T[1][1]=%.4f, T[0][0]=%.4f)\n",
		mk.MinEntropy, mk.T[1][1], mk.T[0][0])
	fmt.Printf("min-entropy estimate:    %.4f bits/bit\n", min)

	// Continuous health tests over the same stream.
	hb, err := sp80090b.NewHealthBlock(*h, sp80090b.DefaultAlpha, sp80090b.DefaultWindow)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < seq.Len(); i++ {
		hb.Feed(seq.Bit(i))
	}
	rct, apt := hb.Alarms()
	reg.Counter("entropy_health_alarms_total",
		"continuous health-test alarms over the analysed stream, by test",
		"test", "rct").Add(uint64(rct))
	reg.Counter("entropy_health_alarms_total",
		"continuous health-test alarms over the analysed stream, by test",
		"test", "apt").Add(uint64(apt))
	fmt.Printf("health tests (H=%.2f):    RCT alarms=%d  APT alarms=%d\n", *h, rct, apt)
	if rct+apt > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "entropy:", err)
	os.Exit(2)
}
