// Command designlint statically verifies the hardware design space: it
// extracts the structure model of the paper's eight shipped design points
// (internal/design) and runs the internal/analysis/designlint rules over
// each — counter widths against worst-case counts, register-map
// collisions and bus splits, the resource-sharing tricks, FF/LUT
// accounting, and reset behaviour — without simulating a single bit.
//
// Usage:
//
//	designlint [-only counterwidth,regmap] [-list]
//
// The exit status is 0 when every design point is clean, 1 when findings
// were reported, 2 when extraction or rule selection failed — the same
// convention trnglint and go vet use, so CI wires it in as one more gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/designlint"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of rules to run")
	list := flag.Bool("list", false, "list the rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: designlint [-only a,b] [-list]\n\nRules:\n")
		for _, r := range designlint.Rules() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", r.Name, r.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, r := range designlint.Rules() {
			fmt.Printf("%-14s %s\n", r.Name, r.Doc)
		}
		return
	}

	// Library errors already carry the designlint: prefix.
	rules, err := selectRules(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings, err := designlint.CheckShipped(rules...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "designlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectRules resolves the -only flag; an empty flag selects the full
// suite (designlint.CheckShipped treats no rules as all rules).
func selectRules(only string) ([]*designlint.Rule, error) {
	if only == "" {
		return nil, nil
	}
	var rules []*designlint.Rule
	for _, name := range strings.Split(only, ",") {
		r, err := designlint.RuleByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}
