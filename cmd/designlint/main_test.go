package main

import (
	"strings"
	"testing"

	"repro/internal/analysis/designlint"
)

// TestShippedDesignSpaceIsClean runs the full rule suite over the eight
// shipped design points — exactly what the CI designlint job runs — and
// requires zero findings.
func TestShippedDesignSpaceIsClean(t *testing.T) {
	findings, err := designlint.CheckShipped()
	if err != nil {
		t.Fatalf("designlint failed to run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSelectRules pins the -only flag behaviour.
func TestSelectRules(t *testing.T) {
	rules, err := selectRules("counterwidth, regmap")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "counterwidth" || rules[1].Name != "regmap" {
		t.Fatalf("wrong suite: %v", rules)
	}
	if rules, err := selectRules(""); err != nil || rules != nil {
		t.Fatalf("empty -only should select the full suite, got %v, %v", rules, err)
	}
	if _, err := selectRules("nosuch"); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want unknown-rule error, got %v", err)
	}
}

// TestSuiteCoversAllConstraints keeps the five paper constraints wired: a
// dropped rule would silently weaken the gate.
func TestSuiteCoversAllConstraints(t *testing.T) {
	want := map[string]bool{
		"counterwidth": true, "regmap": true, "sharing": true,
		"resources": true, "reset": true,
	}
	for _, r := range designlint.Rules() {
		if !want[r.Name] {
			t.Errorf("unexpected rule %q", r.Name)
		}
		delete(want, r.Name)
	}
	for name := range want {
		t.Errorf("rule %q missing from the suite", name)
	}
}
