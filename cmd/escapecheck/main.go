// Command escapecheck cross-checks the //trnglint:hotpath closure against
// the compiler's own escape analysis. The perflint analyzers (noalloc,
// hotcall, nodefer) prove allocation discipline syntactically; escapecheck
// closes the loop semantically: it rebuilds the module with
// -gcflags=-m=2, parses the escape diagnostics the gc backend emits, and
// fails when a value escapes to the heap inside a hot function — exactly
// the regression the 0 allocs/op benchmark gates would later catch, but
// at lint time and pinned to the offending line.
//
// Usage:
//
//	escapecheck [-C dir] [packages]
//
// Packages default to ./... against the enclosing module. A diagnostic
// inside the hot closure is suppressed by the same line waiver the
// analyzers honor: //trnglint:alloc <reason> on the line or the line
// above. Exit status: 0 clean, 1 findings, 2 when the load or the build
// itself failed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	dir := flag.String("C", ".", "directory whose enclosing module is checked")
	flag.Parse()
	os.Exit(run(os.Stdout, os.Stderr, *dir, flag.Args()))
}

// escape is one heap diagnostic parsed from the compiler output.
type escape struct {
	File string // as printed by the compiler (usually module-relative)
	Line int
	Col  int
	Msg  string
}

// parseEscapes extracts the heap-relevant diagnostics from -m=2 output:
// "escapes to heap" and "moved to heap:" lines. Everything else — the
// "does not escape" confirmations, inlining notes, and the indented
// flow-explanation lines -m=2 appends — is dropped.
func parseEscapes(out string) []escape {
	var es []escape
	for _, line := range strings.Split(out, "\n") {
		if line == "" || line[0] == ' ' || line[0] == '\t' || line[0] == '#' {
			continue
		}
		file, rest, ok := strings.Cut(line, ".go:")
		if !ok {
			continue
		}
		file += ".go"
		parts := strings.SplitN(rest, ":", 3)
		if len(parts) != 3 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[0])
		col, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			continue
		}
		msg := strings.TrimSpace(parts[2])
		if strings.Contains(msg, "does not escape") {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap:") {
			continue
		}
		es = append(es, escape{File: file, Line: ln, Col: col, Msg: msg})
	}
	return es
}

// hotRange is the line span of one function in the hot closure.
type hotRange struct {
	Fn         string
	Start, End int
}

// hotSpans maps each absolute file path to the hot function spans in it.
type hotSpans map[string][]hotRange

// lookup returns the label of the hot function covering file:line, if any.
func (h hotSpans) lookup(file string, line int) (string, bool) {
	for _, r := range h[file] {
		if line >= r.Start && line <= r.End {
			return r.Fn, true
		}
	}
	return "", false
}

// run is main minus the process boundary, returning the exit code.
func run(stdout, stderr io.Writer, dir string, patterns []string) int {
	l, err := load.NewModuleLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, "escapecheck:", err)
		return 2
	}
	targets, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "escapecheck:", err)
		return 2
	}
	idx := analysis.NewHotIndex()
	for _, t := range l.Cached() {
		idx.AddPackage(t.Files, t.Info)
	}
	spans := make(hotSpans)
	dirsByFile := make(map[string]*analysis.Directives)
	for _, t := range targets {
		if len(t.TypeErrors) > 0 {
			fmt.Fprintf(stderr, "escapecheck: %s does not type-check: %v\n", t.ImportPath, t.TypeErrors[0])
			return 2
		}
		dirs := analysis.ParseDirectives(t.Fset, t.Files)
		for _, f := range t.Files {
			dirsByFile[t.Fset.Position(f.Pos()).Filename] = dirs
		}
		u := &analysis.Unit{Fset: t.Fset, Files: t.Files, Pkg: t.Pkg, Info: t.Info, Hot: idx}
		for fn, fd := range analysis.HotClosure(u, dirs, idx) {
			p := t.Fset.Position(fd.Pos())
			spans[p.Filename] = append(spans[p.Filename], hotRange{
				Fn:    analysis.FuncLabel(fn),
				Start: p.Line,
				End:   t.Fset.Position(fd.End()).Line,
			})
		}
	}

	// The compiler replays -m=2 diagnostics from the build cache on
	// repeat runs, so no -a is needed; the run is incremental-build fast.
	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	if len(patterns) == 0 {
		args = append(args, "./...")
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModRoot()
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(stderr, "escapecheck: go build failed: %v\n%s", err, out)
		return 2
	}

	var findings []string
	for _, e := range parseEscapes(string(out)) {
		file := e.File
		if !filepath.IsAbs(file) {
			file = filepath.Join(l.ModRoot(), file)
		}
		fn, hot := spans.lookup(file, e.Line)
		if !hot {
			continue
		}
		dirs := dirsByFile[file]
		if dirs != nil && dirs.WaivedLine(file, e.Line, "escapecheck") {
			continue
		}
		findings = append(findings,
			fmt.Sprintf("%s:%d:%d: [escapecheck] hot path %s: %s", file, e.Line, e.Col, fn, e.Msg))
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "escapecheck: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
