package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseEscapes pins the -m=2 grammar the checker depends on: heap
// lines kept, confirmations / inline notes / flow explanations dropped.
func TestParseEscapes(t *testing.T) {
	out := strings.Join([]string{
		"# scratch/lib",
		"lib/lib.go:5:6: can inline Cold",
		"lib/lib.go:9:2: x escapes to heap:",
		"\tflow: ~r0 = &x:",
		"\t  from &x (address-of) at lib/lib.go:10:9",
		"lib/lib.go:12:2: moved to heap: y",
		"lib/lib.go:20:10: make([]byte, n) does not escape",
		"lib/lib.go:31:14: []byte(s) escapes to heap",
		"not a diagnostic line",
		"lib/lib.go:badline:1: escapes to heap",
	}, "\n")
	es := parseEscapes(out)
	if len(es) != 3 {
		t.Fatalf("parsed %d escapes, want 3: %+v", len(es), es)
	}
	want := []escape{
		{File: "lib/lib.go", Line: 9, Col: 2, Msg: "x escapes to heap:"},
		{File: "lib/lib.go", Line: 12, Col: 2, Msg: "moved to heap: y"},
		{File: "lib/lib.go", Line: 31, Col: 14, Msg: "[]byte(s) escapes to heap"},
	}
	for i, w := range want {
		if es[i] != w {
			t.Errorf("escape[%d] = %+v, want %+v", i, es[i], w)
		}
	}
}

func TestHotSpansLookup(t *testing.T) {
	h := hotSpans{"/m/a.go": {{Fn: "Hot", Start: 10, End: 20}, {Fn: "Warm", Start: 30, End: 31}}}
	if fn, ok := h.lookup("/m/a.go", 15); !ok || fn != "Hot" {
		t.Errorf("lookup(15) = %q, %v; want Hot, true", fn, ok)
	}
	if _, ok := h.lookup("/m/a.go", 25); ok {
		t.Error("lookup(25) matched between spans")
	}
	if _, ok := h.lookup("/m/b.go", 15); ok {
		t.Error("lookup matched the wrong file")
	}
}

// writeScratchModule lays down a self-contained module whose hot function
// provably leaks a local to the heap, with a waived twin and a cold twin.
func writeScratchModule(t *testing.T, waived bool) string {
	t.Helper()
	dir := t.TempDir()
	waiver := ""
	if waived {
		// The compiler anchors "moved to heap: x" at the declaration, so
		// that is the line the waiver goes on — the finding names it.
		waiver = " //trnglint:alloc documented escape, returned once per sequence"
	}
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"lib/lib.go": `// Package lib is escapecheck's integration fixture.
package lib

//trnglint:hotpath
func Hot() *int {
	x := 42` + waiver + `
	return &x
}

func Cold() *int {
	y := 7
	return &y
}
`,
	}
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunScratchModule drives the whole checker against a real compile:
// the hot escape is a finding, the cold one is not, and the line waiver
// silences it.
func TestRunScratchModule(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not in PATH")
	}
	dir := writeScratchModule(t, false)
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, dir, []string{"./..."}); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	got := stdout.String()
	if !strings.Contains(got, "[escapecheck] hot path Hot: moved to heap: x") {
		t.Errorf("missing hot finding in:\n%s", got)
	}
	if strings.Contains(got, "Cold") {
		t.Errorf("cold function reported:\n%s", got)
	}

	stdout.Reset()
	stderr.Reset()
	waivedDir := writeScratchModule(t, true)
	if code := run(&stdout, &stderr, waivedDir, []string{"./..."}); code != 0 {
		t.Fatalf("waived exit = %d, want 0\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
}

func TestRunBadDir(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, t.TempDir(), nil); code != 2 {
		t.Fatalf("exit = %d, want 2 (no go.mod)", code)
	}
}
