// Command trnglint is the repository's multichecker: it runs the
// internal/analysis analyzers — regwidth, determinism, errdrop,
// resetcheck, the conclint concurrency family (guardedby, atomicmix,
// lockorder, gorolife), and the perflint hot-path family (noalloc,
// hotcall, nodefer) — over the module and reports every unwaived finding.
// The suite proves, at lint time, the invariants the paper's platform
// rests on: 16-bit bus arithmetic stays masked, the bit-reproducible
// packages stay free of wall-clock and scheduling leaks, partial-result
// errors are never discarded, reused monitors are reset between sources,
// annotated fields are only touched under their mutex, atomic and plain
// accesses never mix, locks are acquired in one partial order, every
// goroutine has a join/quit path, and the //trnglint:hotpath closure —
// the line-rate ingest paths the 0 allocs/op benchmark gates measure —
// stays free of allocating constructs, cold calls, and scheduling points.
//
// Usage:
//
//	trnglint [-only regwidth,errdrop] [-json] [-time] [packages]
//
// Packages default to ./... resolved against the enclosing module. -json
// emits one JSON object per finding (file/line/col/analyzer/message) for
// CI annotation tooling. -time prints per-analyzer wall time to stderr.
// The exit status is 0 when clean, 1 when findings were reported, 2 when
// the load or analysis itself failed — the same convention go vet uses,
// so CI wires it in as one more gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errdrop"
	"repro/internal/analysis/gorolife"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/hotcall"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/nodefer"
	"repro/internal/analysis/regwidth"
	"repro/internal/analysis/resetcheck"
)

// analyzers is the full suite. Registration is sorted by name so -list,
// -only error messages, usage text and per-analyzer timing report in one
// deterministic order no matter how the families grow.
var analyzers = sortedSuite(
	regwidth.Analyzer,
	determinism.Analyzer,
	errdrop.Analyzer,
	resetcheck.Analyzer,
	guardedby.Analyzer,
	atomicmix.Analyzer,
	lockorder.Analyzer,
	gorolife.Analyzer,
	noalloc.Analyzer,
	hotcall.Analyzer,
	nodefer.Analyzer,
)

func sortedSuite(all ...*analysis.Analyzer) []*analysis.Analyzer {
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Finding is one unwaived diagnostic, in the shape the -json mode emits.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the classic single-line form:
// file:line:col: [analyzer] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	timing := flag.Bool("time", false, "report per-analyzer wall time on stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: trnglint [-only a,b] [-list] [-json] [-time] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	os.Exit(run(os.Stdout, os.Stderr, *only, *jsonOut, *timing, flag.Args()))
}

// run is main minus the process boundary, returning the exit code so the
// exit-code golden test can drive every path.
func run(stdout, stderr io.Writer, only string, jsonOut, timing bool, patterns []string) int {
	suite, err := selectAnalyzers(only)
	if err != nil {
		fmt.Fprintln(stderr, "trnglint:", err)
		return 2
	}

	findings, times, err := LintTimed(".", suite, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "trnglint:", err)
		return 2
	}
	if timing {
		for _, a := range suite {
			fmt.Fprintf(stderr, "trnglint: %-12s %s\n", a.Name, times[a.Name].Round(time.Millisecond))
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(stderr, "trnglint:", err)
				return 2
			}
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "trnglint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var suite []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}

// Lint loads the patterns against the module containing dir and runs the
// suite, returning one formatted line per finding, sorted by position.
// It is the whole of the command's behaviour, factored out so the tests
// (and the self-lint test that keeps the repository clean) drive exactly
// what CI runs.
func Lint(dir string, suite []*analysis.Analyzer, patterns ...string) ([]string, error) {
	findings, _, err := LintTimed(dir, suite, patterns...)
	if err != nil {
		return nil, err
	}
	lines := make([]string, len(findings))
	for i, f := range findings {
		lines[i] = f.String()
	}
	return lines, nil
}

// LintTimed is Lint returning structured findings plus per-analyzer wall
// time (accumulated across packages, keyed by analyzer name).
func LintTimed(dir string, suite []*analysis.Analyzer, patterns ...string) ([]Finding, map[string]time.Duration, error) {
	l, err := load.NewModuleLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	targets, err := l.Load(patterns...)
	if err != nil {
		return nil, nil, err
	}
	// The //trnglint:hotpath index spans every loaded package — named
	// targets and dependencies alike — so the perflint analyzers resolve
	// cross-package hot callees (fleet → hwslice/online/obs) even when a
	// run names only a subset of the module.
	idx := analysis.NewHotIndex()
	for _, c := range l.Cached() {
		idx.AddPackage(c.Files, c.Info)
	}
	times := make(map[string]time.Duration, len(suite))
	var findings []Finding
	for _, t := range targets {
		if len(t.TypeErrors) > 0 {
			return nil, nil, fmt.Errorf("%s does not type-check: %v (run go build first)",
				t.ImportPath, t.TypeErrors[0])
		}
		unit := &analysis.Unit{Fset: t.Fset, Files: t.Files, Pkg: t.Pkg, Info: t.Info, Hot: idx}
		for _, a := range suite {
			start := time.Now()
			diags, err := analysis.Run(unit, a)
			times[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", t.ImportPath, err)
			}
			for _, d := range diags {
				p := t.Fset.Position(d.Pos)
				findings = append(findings, Finding{
					File: p.Filename, Line: p.Line, Col: p.Column,
					Analyzer: a.Name, Message: d.Message,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		if findings[i].Col != findings[j].Col {
			return findings[i].Col < findings[j].Col
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, times, nil
}
