// Command trnglint is the repository's multichecker: it runs the
// internal/analysis analyzers — regwidth, determinism, errdrop,
// resetcheck — over the module and reports every unwaived finding. The
// suite proves, at lint time, the invariants the paper's platform rests
// on: 16-bit bus arithmetic stays masked, the bit-reproducible packages
// stay free of wall-clock and scheduling leaks, partial-result errors are
// never discarded, and reused monitors are reset between sources.
//
// Usage:
//
//	trnglint [-only regwidth,errdrop] [packages]
//
// Packages default to ./... resolved against the enclosing module. The
// exit status is 0 when clean, 1 when findings were reported, 2 when the
// load or analysis itself failed — the same convention go vet uses, so
// CI wires it in as one more gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errdrop"
	"repro/internal/analysis/load"
	"repro/internal/analysis/regwidth"
	"repro/internal/analysis/resetcheck"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	regwidth.Analyzer,
	determinism.Analyzer,
	errdrop.Analyzer,
	resetcheck.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: trnglint [-only a,b] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trnglint:", err)
		os.Exit(2)
	}

	findings, err := Lint(".", suite, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trnglint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "trnglint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var suite []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}

// Lint loads the patterns against the module containing dir and runs the
// suite, returning one formatted line per finding, sorted by position.
// It is the whole of the command's behaviour, factored out so the tests
// (and the self-lint test that keeps the repository clean) drive exactly
// what CI runs.
func Lint(dir string, suite []*analysis.Analyzer, patterns ...string) ([]string, error) {
	l, err := load.NewModuleLoader(dir)
	if err != nil {
		return nil, err
	}
	targets, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, t := range targets {
		if len(t.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s does not type-check: %v (run go build first)",
				t.ImportPath, t.TypeErrors[0])
		}
		unit := &analysis.Unit{Fset: t.Fset, Files: t.Files, Pkg: t.Pkg, Info: t.Info}
		for _, a := range suite {
			diags, err := analysis.Run(unit, a)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
			}
			for _, d := range diags {
				findings = append(findings,
					fmt.Sprintf("%s: [%s] %s", t.Fset.Position(d.Pos), a.Name, d.Message))
			}
		}
	}
	sort.Strings(findings)
	return findings, nil
}
