// Package dirty is the fixture for trnglint's exit-code and JSON output
// tests: it carries exactly one deliberate finding (a leaked goroutine).
// It lives under testdata so the ./... walk — and therefore the self-lint
// gate — never matches it; only the command's own tests load it by
// explicit pattern.
package dirty

func leak() {
	go func() {
		for {
		}
	}()
}
