// Package dirtyhot is the fixture for trnglint's perflint JSON exposition
// test: it carries exactly one deliberate noalloc finding (a make inside a
// //trnglint:hotpath function). Like dirty, it lives under testdata so the
// ./... walk — and the self-lint gate — never matches it.
package dirtyhot

//trnglint:hotpath
func kernel(w uint64) uint64 {
	buf := make([]uint64, 1)
	buf[0] = w
	return buf[0]
}
