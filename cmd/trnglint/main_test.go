package main

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// TestRepositoryIsLintClean runs the full analyzer suite over the whole
// module — exactly what CI's lint job runs — and requires zero findings.
// Every intentional exception in the tree carries a //trnglint: waiver
// with its reason, so a failure here is either a real invariant break or
// an undocumented exception; both should fail the build.
func TestRepositoryIsLintClean(t *testing.T) {
	findings, err := Lint("../..", analyzers, "./...")
	if err != nil {
		t.Fatalf("lint failed to run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSelectAnalyzers pins the -only flag behaviour.
func TestSelectAnalyzers(t *testing.T) {
	suite, err := selectAnalyzers("regwidth, errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 || suite[0].Name != "regwidth" || suite[1].Name != "errdrop" {
		t.Fatalf("wrong suite: %v", suite)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want unknown-analyzer error, got %v", err)
	}
}

// TestSuiteCoversAllInvariants keeps the paper invariants and the
// concurrency contracts wired: a dropped analyzer would silently weaken
// the gate.
func TestSuiteCoversAllInvariants(t *testing.T) {
	want := map[string]bool{
		"regwidth": true, "determinism": true, "errdrop": true, "resetcheck": true,
		"guardedby": true, "atomicmix": true, "lockorder": true, "gorolife": true,
		"noalloc": true, "hotcall": true, "nodefer": true,
	}
	for _, a := range analyzers {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("analyzer %q missing from the suite", name)
	}
}

// TestSuiteIsSorted pins the deterministic registration order: -list, the
// usage text, -only errors and the per-analyzer timing report all iterate
// the suite in name order no matter how the families are registered.
func TestSuiteIsSorted(t *testing.T) {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("suite is not sorted by name: %v", names)
	}
}

// TestExitCodes pins the go-vet exit convention the CI gate relies on:
// 0 clean, 1 findings, 2 when the run itself fails. The dirty fixture
// lives under testdata so only these tests ever load it.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		only     string
		patterns []string
		want     int
	}{
		{"clean", "", []string{"internal/tables"}, 0},
		{"findings", "gorolife", []string{"cmd/trnglint/testdata/dirty"}, 1},
		{"bad pattern", "", []string{"no/such/dir"}, 2},
		{"bad analyzer", "nosuch", []string{"internal/tables"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(&stdout, &stderr, tc.only, false, false, tc.patterns)
			if got != tc.want {
				t.Errorf("exit code %d, want %d (stdout %q, stderr %q)",
					got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestJSONOutput pins the -json exposition: one JSON object per finding
// with the file/line/analyzer fields CI annotation tooling keys on, for a
// conclint finding and a perflint one.
func TestJSONOutput(t *testing.T) {
	cases := []struct {
		name     string
		only     string
		pattern  string
		file     string
		contains string
	}{
		{"gorolife", "gorolife", "cmd/trnglint/testdata/dirty", "dirty.go", "join or quit"},
		{"noalloc", "noalloc", "cmd/trnglint/testdata/dirtyhot", "dirtyhot.go", "hot path kernel: make allocates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(&stdout, &stderr, tc.only, true, false, []string{tc.pattern})
			if code != 1 {
				t.Fatalf("exit code %d, want 1 (stderr %q)", code, stderr.String())
			}
			lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
			if len(lines) != 1 {
				t.Fatalf("want exactly one JSON finding, got %d: %q", len(lines), stdout.String())
			}
			var f Finding
			if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
				t.Fatalf("output is not JSON: %v (%q)", err, lines[0])
			}
			if !strings.HasSuffix(f.File, tc.file) || f.Line <= 0 || f.Col <= 0 ||
				f.Analyzer != tc.only || !strings.Contains(f.Message, tc.contains) {
				t.Errorf("unexpected finding: %+v", f)
			}
		})
	}
}

// TestTimingOutput pins -time: one per-analyzer wall-time line on stderr.
func TestTimingOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, "regwidth,gorolife", false, true,
		[]string{"internal/tables"}); code != 0 {
		t.Fatalf("exit code %d, want 0 (stderr %q)", code, stderr.String())
	}
	for _, name := range []string{"regwidth", "gorolife"} {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("stderr lacks a timing line for %s: %q", name, stderr.String())
		}
	}
}
