package main

import (
	"strings"
	"testing"
)

// TestRepositoryIsLintClean runs the full analyzer suite over the whole
// module — exactly what CI's lint job runs — and requires zero findings.
// Every intentional exception in the tree carries a //trnglint: waiver
// with its reason, so a failure here is either a real invariant break or
// an undocumented exception; both should fail the build.
func TestRepositoryIsLintClean(t *testing.T) {
	findings, err := Lint("../..", analyzers, "./...")
	if err != nil {
		t.Fatalf("lint failed to run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSelectAnalyzers pins the -only flag behaviour.
func TestSelectAnalyzers(t *testing.T) {
	suite, err := selectAnalyzers("regwidth, errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 || suite[0].Name != "regwidth" || suite[1].Name != "errdrop" {
		t.Fatalf("wrong suite: %v", suite)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want unknown-analyzer error, got %v", err)
	}
}

// TestSuiteCoversAllInvariants keeps the four paper invariants wired: a
// dropped analyzer would silently weaken the gate.
func TestSuiteCoversAllInvariants(t *testing.T) {
	want := map[string]bool{
		"regwidth": true, "determinism": true, "errdrop": true, "resetcheck": true,
	}
	for _, a := range analyzers {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("analyzer %q missing from the suite", name)
	}
}
