// Command tablegen regenerates the paper's tables and figures from the
// implemented system.
//
// Usage:
//
//	tablegen -all
//	tablegen -table III
//	tablegen -fig 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tables"
)

func main() {
	table := flag.String("table", "", "regenerate one table: I, II, III or IV")
	fig := flag.String("fig", "", "regenerate one figure: 1, 2 or 3")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()

	emit := map[string]func() string{
		"I": tables.TableI, "II": tables.TableII,
		"III": tables.TableIII, "IV": tables.TableIV,
		"A1": tables.TableA1, "A2": tables.TableA2, "A1fig": tables.FigA1,
		"1": tables.Fig1, "2": tables.Fig2, "3": tables.Fig3,
	}

	switch {
	case *all:
		for _, k := range []string{"I", "II", "III", "IV", "A1", "A2", "A1fig", "1", "2", "3"} {
			fmt.Println(emit[k]())
			fmt.Println()
		}
	case *table != "":
		f, ok := emit[*table]
		if !ok || *table == "1" || *table == "2" || *table == "3" {
			fmt.Fprintf(os.Stderr, "tablegen: unknown table %q (want I, II, III or IV)\n", *table)
			os.Exit(2)
		}
		fmt.Println(f())
	case *fig != "":
		f, ok := emit[*fig]
		if !ok || len(*fig) > 1 {
			fmt.Fprintf(os.Stderr, "tablegen: unknown figure %q (want 1, 2 or 3)\n", *fig)
			os.Exit(2)
		}
		fmt.Println(f())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
