package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a file under dir, creating parents.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestUndocumentedExportsAreFindings pins the per-identifier audit: an
// undocumented exported func, type, method, const and package comment each
// produce one finding; documented and unexported identifiers none.
func TestUndocumentedExportsAreFindings(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "p.go", `package p

// Documented is fine.
func Documented() {}

func Naked() {}

type Bare struct{}

// T is documented.
type T struct{}

func (T) Method() {}

const Loose = 1

// internal identifiers need no docs
func hidden() {}
var quiet int
`)
	var out, errb bytes.Buffer
	if code := run([]string{dir}, nil, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"no package comment", "func Naked", "type Bare", "method T.Method", "const Loose",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing finding %q in:\n%s", want, got)
		}
	}
	for _, silent := range []string{"Documented", "hidden", "quiet"} {
		if strings.Contains(got, silent) {
			t.Errorf("false finding on %q in:\n%s", silent, got)
		}
	}
}

// TestCleanPackagePasses pins the zero-findings exit.
func TestCleanPackagePasses(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "p.go", `// Package p is fully documented.
package p

// Exported does nothing.
func Exported() {}
`)
	var out, errb bytes.Buffer
	if code := run([]string{dir}, nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0; out: %s; stderr: %s", code, out.String(), errb.String())
	}
}

// chdirRepoRoot moves the test to the module root (where the audited
// packages and the Makefile live) and restores the old directory after.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	for i := 0; i < 8; i++ {
		if _, err := os.Stat("go.mod"); err == nil {
			return
		}
		if err := os.Chdir(".."); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("module root not found")
}

// TestRepoPackagesAreDocumented runs the audit over the packages the gate
// guards in CI — the test IS the gate, one build earlier.
func TestRepoPackagesAreDocumented(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb bytes.Buffer
	pkgs := []string{"./internal/online", "./internal/fleet", "./internal/sp80090b", "./internal/hwslice"}
	if code := run(pkgs, []string{"EXPERIMENTS.md"}, &out, &errb); code != 0 {
		t.Fatalf("repo audit failed (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}

// TestStaleReproCommandsAreFindings pins the methodology-document check:
// a fenced command naming a missing ./cmd directory or make target fails;
// prose mentions outside fences are ignored.
func TestStaleReproCommandsAreFindings(t *testing.T) {
	chdirRepoRoot(t) // make-target lookups read the repository Makefile
	dir := t.TempDir()
	md := write(t, dir, "EXP.md", "Prose may say go run ./cmd/ghost freely.\n"+
		"```\n$ go run ./cmd/ghost -n 128\nmake phantom\nmake bench FLAG=1\n```\n")
	var out, errb bytes.Buffer
	if code := run(nil, []string{md}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "./cmd/ghost") || !strings.Contains(got, `"phantom"`) {
		t.Fatalf("missing findings in:\n%s", got)
	}
	if strings.Count(got, "./cmd/ghost") != 1 {
		t.Fatalf("prose mention outside the fence was flagged:\n%s", got)
	}
	// The real bench target must not be a finding even with a variable
	// assignment argument after it.
	if strings.Contains(got, "bench") {
		t.Fatalf("existing make target flagged:\n%s", got)
	}
}
