// Command doccheck is the documentation gate: it fails when an exported
// identifier in the named packages lacks a doc comment, when a package
// lacks a package comment, or when a repro command quoted in a methodology
// document (EXPERIMENTS.md) no longer parses against the repository — a
// `go run ./cmd/<name>` whose command directory is gone, or a
// `make <target>` whose target left the Makefile. Stdlib only (go/parser +
// go/doc); wired into `make docs-check` and therefore the CI lint job.
//
// Usage:
//
//	doccheck -md EXPERIMENTS.md ./internal/online ./internal/fleet
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	var md multiFlag
	flag.Var(&md, "md", "methodology document whose fenced repro commands must parse (repeatable)")
	flag.Parse()
	os.Exit(run(flag.Args(), md, os.Stdout, os.Stderr))
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// run executes the audit and returns the exit code: 0 clean, 1 findings,
// 2 operational failure (unreadable package or document).
func run(pkgs []string, mdFiles []string, stdout, stderr io.Writer) int {
	var findings []string
	for _, dir := range pkgs {
		fs, err := auditPackage(dir)
		if err != nil {
			fmt.Fprintln(stderr, "doccheck:", err)
			return 2
		}
		findings = append(findings, fs...)
	}
	for _, md := range mdFiles {
		fs, err := auditCommands(md)
		if err != nil {
			fmt.Fprintln(stderr, "doccheck:", err)
			return 2
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		fmt.Fprintf(stdout, "doccheck: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// auditPackage parses one package directory (tests excluded) and reports
// every exported identifier without a doc comment.
func auditPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	parsed, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var findings []string
	for name, astPkg := range parsed {
		p := doc.New(astPkg, dir, 0)
		at := func(what, ident string) {
			findings = append(findings,
				fmt.Sprintf("%s: %s %s is exported but undocumented", dir, what, ident))
		}
		if strings.TrimSpace(p.Doc) == "" {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		for _, f := range p.Funcs {
			if token.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
				at("func", f.Name)
			}
		}
		// A value group is documented by a group comment or per-spec
		// comments (the idiom for enums like ShedPolicy and OpKind); only
		// an exported name covered by neither is a finding.
		checkValues := func(vals []*doc.Value, what string) {
			for _, v := range vals {
				if strings.TrimSpace(v.Doc) != "" {
					continue
				}
				for _, spec := range v.Decl.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || (vs.Doc != nil && strings.TrimSpace(vs.Doc.Text()) != "") {
						continue
					}
					for _, n := range vs.Names {
						if token.IsExported(n.Name) {
							at(what, n.Name)
							break
						}
					}
				}
			}
		}
		checkValues(p.Consts, "const")
		checkValues(p.Vars, "var")
		for _, t := range p.Types {
			if token.IsExported(t.Name) && strings.TrimSpace(t.Doc) == "" {
				at("type", t.Name)
			}
			for _, f := range t.Funcs {
				if token.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
					at("func", f.Name)
				}
			}
			for _, m := range t.Methods {
				if token.IsExported(m.Name) && strings.TrimSpace(m.Doc) == "" {
					at("method", t.Name+"."+m.Name)
				}
			}
			checkValues(t.Consts, "const")
			checkValues(t.Vars, "var")
		}
	}
	return findings, nil
}

var (
	goRunRe   = regexp.MustCompile(`go run (\./cmd/[a-z0-9_-]+)`)
	makeTgtRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_-]*$`)
)

// auditCommands scans a markdown document's fenced code blocks for repro
// commands and verifies each one still parses against the repository:
// `go run ./cmd/<name>` needs the command directory, `make <target>` needs
// the Makefile rule.
func auditCommands(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	makeTargets, err := readMakeTargets("Makefile")
	if err != nil {
		return nil, err
	}
	var findings []string
	inFence := false
	for lineNo, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			continue
		}
		trimmed = strings.TrimPrefix(trimmed, "$ ")
		for _, m := range goRunRe.FindAllStringSubmatch(trimmed, -1) {
			if st, err := os.Stat(filepath.FromSlash(m[1])); err != nil || !st.IsDir() {
				findings = append(findings,
					fmt.Sprintf("%s:%d: repro command references missing command %s", path, lineNo+1, m[1]))
			}
		}
		fields := strings.Fields(trimmed)
		if len(fields) >= 2 && fields[0] == "make" {
			for _, tgt := range fields[1:] {
				if !makeTgtRe.MatchString(tgt) {
					continue // an option or variable assignment, not a target
				}
				if !makeTargets[tgt] {
					findings = append(findings,
						fmt.Sprintf("%s:%d: repro command references missing make target %q", path, lineNo+1, tgt))
				}
			}
		}
	}
	return findings, nil
}

// readMakeTargets collects the rule names of the Makefile.
func readMakeTargets(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	targets := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "\t") || strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.Index(line, ":")
		if colon <= 0 {
			continue
		}
		if strings.HasPrefix(line[colon:], ":=") {
			continue // variable assignment
		}
		for _, name := range strings.Fields(line[:colon]) {
			if makeTgtRe.MatchString(name) {
				targets[name] = true
			}
		}
	}
	return targets, nil
}
