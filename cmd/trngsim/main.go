// Command trngsim generates TRNG bit streams with configurable defect and
// attack models, for feeding into otftest or external test suites.
//
// Usage:
//
//	trngsim -source ringosc -bits 65536 > healthy.txt
//	trngsim -source ringosc -bits 1048576 -attack lock -onset 500000 > attacked.txt
//	trngsim -source biased -p 0.52 -bits 65536 -raw > biased.bin
//
// With -metrics-addr the generator serves its observability endpoint while
// running (see package repro/internal/obs), so long generations can be
// watched live:
//
//	trngsim -source ringosc -bits 100000000 -metrics-addr :9601 > big.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/trng"
)

func main() {
	source := flag.String("source", "ideal", "ideal, biased, markov, ringosc, drift, stuck")
	p := flag.Float64("p", 0.6, "bias / stickiness parameter")
	bits := flag.Int("bits", 65536, "number of bits to emit")
	seed := flag.Int64("seed", 1, "seed")
	attack := flag.String("attack", "", "optional attack: lock (oscillator lock-in), cut (wire cut)")
	onset := flag.Int("onset", 0, "bit index where the attack begins")
	raw := flag.Bool("raw", false, "emit packed bytes instead of ASCII")
	width := flag.Int("width", 64, "ASCII line width (0 = single line)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /trace on this address while generating")
	flag.Parse()

	src, err := build(*source, *p, *seed)
	if err != nil {
		fatal(err)
	}
	if *attack != "" {
		var bad trng.Source
		switch strings.ToLower(*attack) {
		case "lock":
			bad = trng.NewRingOscillator(100.37, 0.001, *seed+1)
		case "cut":
			bad = trng.NewStuckAt(0)
		default:
			fatal(fmt.Errorf("unknown attack %q", *attack))
		}
		src = trng.NewSwitchAt(src, bad, *onset)
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		_, addr, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trngsim: metrics on http://%s/metrics\n", addr)
		reg.Gauge("trngsim_run_info", "constant 1, labelled with the generation parameters",
			"source", src.Name(), "attack", *attack).Set(1)
		src = &meteredSource{
			inner: src,
			emitted: reg.Counter("trngsim_bits_emitted_total",
				"bits drawn from the simulated source so far"),
		}
	}

	seq := trng.Read(src, *bits)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if *raw {
		if _, err := out.Write(seq.PackBytes()); err != nil {
			fatal(err)
		}
		return
	}
	if err := seq.WriteASCII(out, *width); err != nil {
		fatal(err)
	}
	fmt.Fprintln(out)
}

// meteredSource counts delivered bits, flushing to the shared counter in
// chunks so the per-bit cost stays one local increment.
type meteredSource struct {
	inner   trng.Source
	emitted *obs.Counter
	pending uint64
}

func (m *meteredSource) Name() string { return m.inner.Name() }

func (m *meteredSource) ReadBit() (byte, error) {
	b, err := m.inner.ReadBit()
	if err == nil {
		m.pending++
		if m.pending == 1024 {
			m.emitted.Add(m.pending)
			m.pending = 0
		}
	}
	return b, err
}

func build(kind string, p float64, seed int64) (trng.Source, error) {
	switch strings.ToLower(kind) {
	case "ideal":
		return trng.NewIdeal(seed), nil
	case "biased":
		return trng.NewBiased(p, seed), nil
	case "markov":
		return trng.NewMarkov(p, seed), nil
	case "ringosc":
		return trng.NewRingOscillator(100.37, 0.5, seed), nil
	case "drift":
		return trng.NewDrift(0.5, p, 1<<20, seed), nil
	case "stuck":
		return trng.NewStuckAt(1), nil
	}
	return nil, fmt.Errorf("unknown source %q", kind)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trngsim:", err)
	os.Exit(2)
}
