# Mirrors .github/workflows/ci.yml so `make check` locally is the same
# gate CI runs.
.PHONY: check vet build test

check: vet build test

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...
