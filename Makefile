# Mirrors .github/workflows/ci.yml so `make check` locally is the same
# gate CI runs.
.PHONY: check vet build test bench-smoke bench bench-diff lint docs docs-check soak ttd

check: build lint test bench-smoke

# docs regenerates every generated document (REGISTERS.md is produced from
# the live hardware definitions). CI runs docs-check to fail on drift.
docs:
	go run ./cmd/regmapdoc -o REGISTERS.md

# docs-check additionally runs cmd/doccheck: every exported identifier in
# the audited packages must carry a doc comment, and every repro command
# quoted in EXPERIMENTS.md's fenced blocks must still parse against the
# repository (go run ./cmd/<name> directories, make targets).
docs-check: docs
	git diff --exit-code REGISTERS.md
	go run ./cmd/doccheck -md EXPERIMENTS.md \
		./internal/online ./internal/fleet ./internal/sp80090b ./internal/hwslice

vet:
	go vet ./...

build:
	go build ./...

# -shuffle=on randomizes test order so accidental inter-test state
# dependence surfaces instead of hiding behind a fixed order.
test:
	go test -race -shuffle=on ./...

# lint is the static gate: formatting, go vet, the repository's own
# trnglint analyzers (16-bit bus masking, determinism, error-contract and
# monitor-reset invariants, the conclint concurrency family — guardedby,
# atomicmix, lockorder, gorolife — and the perflint hot-path family —
# noalloc, hotcall, nodefer over the //trnglint:hotpath closure; see
# internal/analysis), designlint (the design-space checker: counter
# widths, register-map integrity, resource sharing and accounting over all
# eight variants — see internal/analysis/designlint), and escapecheck
# (the compiler cross-check: go build -gcflags=-m=2 escape diagnostics
# correlated against the hot closure, so a heap escape the syntactic
# analyzers cannot see still fails the gate). The linters are built once
# into a cached bin dir so repeated `make lint` runs pay one link, not one
# per invocation, and trnglint runs with -time so per-analyzer wall time
# shows up in the log — a slow analyzer is a regression too. govulncheck
# runs when installed; the offline dev container does not ship it.
LINTBIN := .cache/lintbin

lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@mkdir -p $(LINTBIN)
	go build -o $(LINTBIN)/trnglint ./cmd/trnglint
	go build -o $(LINTBIN)/designlint ./cmd/designlint
	go build -o $(LINTBIN)/escapecheck ./cmd/escapecheck
	./$(LINTBIN)/trnglint -time ./...
	./$(LINTBIN)/designlint
	./$(LINTBIN)/escapecheck ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipped (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

bench-smoke:
	go test -run='^$$' -bench=. -benchtime=1x ./...

# ttd reproduces the time-to-detect tables of EXPERIMENTS.md ("Time to
# detect"): the online anomaly detector swept across the defect zoo.
# Deterministic in the seed — the published tables regenerate bit for bit.
ttd:
	go run ./cmd/ttd -n 128 -variant medium -trials 25 -onset 4096
	go run ./cmd/ttd -n 128 -variant medium -family bias -trials 25 \
		-onset 4096 -window 4096 -max-bits 1048576

# soak is the race-enabled fleet chaos smoke: a short trngd run with every
# defect class at once (fault-storming, biased and transient-flaky tenants
# under the sampled-degradation shed policy, deadline sweeper armed) plus
# monitor recycling across generations. trngd itself enforces the batch
# accounting identity on every stream report and exits non-zero on a leak,
# so this is a correctness gate, not just a does-it-crash check. Runs
# twice — serial ingest and bit-sliced lane-group ingest — so the sliced
# hot path soaks under -race with every defect class too. Bounded wall
# time: ~seconds. GORACE=halt_on_error=1 turns the race detector's report
# into an immediate non-zero exit, so a data race fails the gate even if
# the run would otherwise complete with a clean accounting identity.
soak: export GORACE=halt_on_error=1
soak:
	go run -race ./cmd/trngd -n 128 -variant light \
		-streams 192 -words 48 -generations 2 -shards 8 -queue 64 \
		-policy sample -sample-every 8 \
		-faulty 0.25 -transient-rate 0.1 -biased 0.125 -bias 0.8 \
		-stream-deadline 30s -sweep-every 25ms -seed 7
	go run -race ./cmd/trngd -n 128 -variant light -bitsliced \
		-streams 192 -words 48 -generations 2 -shards 8 -queue 64 \
		-policy sample -sample-every 8 \
		-faulty 0.25 -transient-rate 0.1 -biased 0.125 -bias 0.8 \
		-stream-deadline 30s -sweep-every 25ms -seed 7

# Full benchmark run, archived as machine-readable JSON (test2json framing
# around the standard benchmark lines) for regression comparison. The run
# lands in BENCH_latest.json — the stable name bench-diff and CI compare
# against — and is also copied to a dated archive. Writing the stable file
# first means two same-day runs no longer silently reuse a stale dated
# file: BENCH_latest.json always holds the newest run. The no-op pre-pass
# warms the build cache so compilation of later packages does not
# time-share the CPU with (and inflate) earlier packages' benchmarks.
bench:
	go test -run='^$$' -bench='^$$' ./... > /dev/null
	go test -run='^$$' -bench=. -benchmem -json ./... > BENCH_latest.json
	cp BENCH_latest.json BENCH_$$(date +%Y%m%d).json

# bench-diff is the benchmark-trajectory gate: re-run every benchmark with
# a short benchtime and compare per-benchmark ns/op against the committed
# BENCH_latest.json archive. The threshold is deliberately generous — CI
# machines are noisy and differ from the machine that produced the archive
# — so the gate trips on order-of-magnitude fast-path regressions, not
# scheduling jitter. The fresh run is written next to the archive but
# never committed.
bench-diff:
	go test -run='^$$' -bench='^$$' ./... > /dev/null
	go test -run='^$$' -bench=. -benchmem -benchtime=100ms -json ./... > BENCH_head.json.tmp
	go run ./cmd/benchdiff -fail-over 100 BENCH_latest.json BENCH_head.json.tmp
	rm -f BENCH_head.json.tmp
