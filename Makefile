# Mirrors .github/workflows/ci.yml so `make check` locally is the same
# gate CI runs.
.PHONY: check vet build test bench-smoke bench

check: vet build test bench-smoke

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench-smoke:
	go test -run='^$$' -bench=. -benchtime=1x ./...

# Full benchmark run, archived as machine-readable JSON (test2json framing
# around the standard benchmark lines) for regression comparison.
bench:
	go test -run='^$$' -bench=. -benchmem -json ./... > BENCH_$$(date +%Y%m%d).json
